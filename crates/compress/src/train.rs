//! Quantization-aware finetuning of a pruned network (the paper's "retrain
//! to recover accuracy" step).
//!
//! [`finetune_compressed`] prunes the network in place, derives the
//! fake-quant configuration a [`CompressionPolicy`] implies (MSE-searched
//! weight scales, calibrated activation ranges) and then runs the batched
//! training engine with **fake-quant-in-the-loop**: every forward pass sees
//! the quantize→dequantize round trip of weights and input activations while
//! the straight-through gradients update the full-precision master weights.
//! Pruned channels are re-zeroed after every optimiser step, so the sparsity
//! structure the policy chose survives finetuning.

use crate::apply::calibrate_ranges;
use crate::pruning::{prune_weight, zero_channels};
use crate::quantize::quantize_weights;
use crate::{CompressError, CompressionPolicy, Result};
use ie_nn::dataset::Sample;
use ie_nn::quant::{LayerQuantConfig, QuantConfig};
use ie_nn::train::BatchBackwardPlan;
use ie_nn::{Layer, MultiExitNetwork};
use ie_tensor::QuantParams;

/// Widest weight bitwidth the fake-quant training plan models; wider layers
/// train in full precision (their policy entry becomes a `None` config).
const MAX_FAKE_QUANT_WEIGHT_BITS: u8 = 16;
/// Widest activation bitwidth the shared [`QuantParams`] code map supports;
/// wider activation policies are clamped to it during finetuning.
const MAX_FAKE_QUANT_ACT_BITS: u8 = ie_tensor::quant::MAX_ACT_BITS;

/// Hyper-parameters of a finetuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate (constant across the run).
    pub learning_rate: f32,
    /// Per-exit loss weights, one per exit.
    pub exit_weights: Vec<f32>,
    /// Worker threads for the batched backward pass. Results are
    /// byte-identical for any value ≥ 1.
    pub threads: usize,
}

impl FinetuneConfig {
    /// A small default run: 2 epochs, batches of 8, equal exit weights.
    pub fn for_exits(exits: usize) -> Self {
        FinetuneConfig {
            epochs: 2,
            batch_size: 8,
            learning_rate: 0.05,
            exit_weights: vec![1.0; exits.max(1)],
            threads: 1,
        }
    }
}

/// What a finetuning run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneOutcome {
    /// The fake-quant configuration derived from the policy — pass it to
    /// [`ie_nn::train::BatchBackwardPlan::fake_quant`] to continue training,
    /// or use its scales to deploy the integer model.
    pub quant: QuantConfig,
    /// Mean training loss per epoch.
    pub epoch_loss: Vec<f32>,
}

/// One pruned layer's re-zeroing recipe: which compressible layer (canonical
/// index) and which input channels to clear after each optimiser step.
#[derive(Debug, Clone)]
struct PruneMask {
    index: usize,
    channels: Vec<usize>,
}

/// Walks the network's parameterised layers in canonical compressible order
/// (trunk segment 0, branch 0, trunk segment 1, …), calling `f` with the
/// canonical index and the layer.
fn for_each_compressible<F>(network: &mut MultiExitNetwork, mut f: F) -> Result<()>
where
    F: FnMut(usize, &mut Layer) -> Result<()>,
{
    let mut index = 0usize;
    for exit in 0..network.num_exits() {
        for part in [true, false] {
            let layers = if part {
                &mut network.segments_mut()[exit]
            } else {
                &mut network.branches_mut()[exit]
            };
            for layer in layers.iter_mut() {
                if layer.is_parameterised() {
                    f(index, layer)?;
                    index += 1;
                }
            }
        }
    }
    Ok(())
}

/// Prunes `network` in place per `policy` and derives the fake-quant
/// configuration: per-layer MSE-searched weight scales (on the pruned
/// weights) plus activation ranges calibrated on `calibration`. Master
/// weights stay full precision — quantization is applied inside the training
/// forward pass, not to the stored tensors.
fn prepare(
    network: &mut MultiExitNetwork,
    policy: &CompressionPolicy,
    calibration: &[Sample],
) -> Result<(QuantConfig, Vec<PruneMask>)> {
    let expected = network.architecture().compressible_layers().len();
    policy.check_length(expected)?;
    if calibration.is_empty() {
        return Err(CompressError::EmptyCalibrationSet);
    }
    let mut masks = Vec::new();
    let mut scales: Vec<Option<(u8, f32, u8)>> = Vec::with_capacity(expected);
    for_each_compressible(network, |index, layer| {
        let Some(entry) = policy.layer(index).copied() else {
            scales.push(None);
            return Ok(());
        };
        let weight = match layer {
            Layer::Conv2d(conv) => conv.weight_mut(),
            Layer::Dense(dense) => dense.weight_mut(),
            _ => unreachable!("parameterised layers are conv or dense"),
        };
        let pruned = prune_weight(weight, entry.preserve_ratio);
        if entry.weight_bits <= MAX_FAKE_QUANT_WEIGHT_BITS {
            let q = quantize_weights(weight, entry.weight_bits);
            scales.push(Some((
                entry.weight_bits,
                q.scale,
                entry.activation_bits.min(MAX_FAKE_QUANT_ACT_BITS),
            )));
        } else {
            scales.push(None);
        }
        if !pruned.is_empty() {
            if let Layer::Conv2d(conv) = layer {
                conv.set_sparse_hint(true);
            }
            masks.push(PruneMask { index, channels: pruned });
        }
        Ok(())
    })?;
    // Observe every layer's input range on the pruned network and pair each
    // weight scale with calibrated activation parameters. Zero stays
    // representable (post-ReLU activations include it and the quantized
    // kernels pad with the zero point).
    let ranges = calibrate_ranges(network, calibration, expected)?;
    let entries = scales
        .into_iter()
        .zip(ranges)
        .map(|(entry, (min, max))| {
            entry.map(|(weight_bits, weight_scale, act_bits)| LayerQuantConfig {
                weight_bits,
                weight_scale,
                input: QuantParams::from_range(min.min(0.0), max.max(0.0), act_bits),
            })
        })
        .collect();
    Ok((QuantConfig::from_layers(entries), masks))
}

/// Re-applies the pruning masks to the master weights.
fn reapply_masks(network: &mut MultiExitNetwork, masks: &[PruneMask]) -> Result<()> {
    let mut next = 0usize;
    for_each_compressible(network, |index, layer| {
        if next < masks.len() && masks[next].index == index {
            let weight = match layer {
                Layer::Conv2d(conv) => conv.weight_mut(),
                Layer::Dense(dense) => dense.weight_mut(),
                _ => unreachable!("parameterised layers are conv or dense"),
            };
            zero_channels(weight, &masks[next].channels);
            next += 1;
        }
        Ok(())
    })
}

/// Prunes `network` per `policy` and finetunes it with
/// fake-quant-in-the-loop so the surviving weights adapt to the quantization
/// grid the policy imposes.
///
/// After every optimiser step the pruned channels are re-zeroed, so the
/// returned network has exactly the sparsity structure `policy` chose; its
/// weights are full-precision masters whose quantize→dequantize round trip
/// (per the returned [`QuantConfig`]'s scales) is what the deployed integer
/// model computes with.
///
/// # Errors
///
/// Returns [`CompressError::PolicyLengthMismatch`] when the policy does not
/// cover every parameterised layer, [`CompressError::EmptyCalibrationSet`]
/// when no calibration samples are given, and propagates training errors as
/// [`CompressError::Nn`].
pub fn finetune_compressed(
    network: &mut MultiExitNetwork,
    policy: &CompressionPolicy,
    train_set: &[Sample],
    calibration: &[Sample],
    config: &FinetuneConfig,
) -> Result<FinetuneOutcome> {
    let (quant, masks) = prepare(network, policy, calibration)?;
    let mut plan = BatchBackwardPlan::fake_quant(quant.clone());
    let batch_size = config.batch_size.max(1);
    let mut epoch_loss = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let mut total = 0.0f32;
        let mut count = 0usize;
        for batch in train_set.chunks(batch_size) {
            total += plan.train_step(
                network,
                batch,
                &config.exit_weights,
                config.learning_rate,
                config.threads,
            )?;
            count += batch.len();
            reapply_masks(network, &masks)?;
        }
        epoch_loss.push(if count == 0 { 0.0 } else { total / count as f32 });
    }
    Ok(FinetuneOutcome { quant, epoch_loss })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerPolicy;
    use ie_nn::dataset::SyntheticDataset;
    use ie_nn::spec::tiny_multi_exit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
    }

    fn aggressive_policy(n: usize) -> CompressionPolicy {
        let mut policy = CompressionPolicy::full_precision(n);
        policy.layers_mut()[1] = LayerPolicy::new(0.5, 4, 8).unwrap();
        policy.layers_mut()[2] = LayerPolicy::new(0.5, 8, 8).unwrap();
        policy
    }

    #[test]
    fn finetuning_reduces_loss_and_preserves_pruned_channels() {
        let mut net = network(40);
        let n = net.architecture().compressible_layers().len();
        let policy = aggressive_policy(n);
        let data = SyntheticDataset::generate(3, 8, 60, 0.05, 41);
        let mut config = FinetuneConfig::for_exits(2);
        config.epochs = 4;
        config.learning_rate = 0.1;
        let outcome =
            finetune_compressed(&mut net, &policy, data.train(), data.test(), &config).unwrap();
        assert_eq!(outcome.quant.len(), n);
        assert!(outcome.quant.layers()[1].is_some());
        assert!(outcome.quant.layers()[0].is_none(), "32-bit layer trains in full precision");
        assert_eq!(outcome.epoch_loss.len(), 4);
        assert!(
            outcome.epoch_loss.last().unwrap() < &outcome.epoch_loss[0],
            "finetuning loss did not decrease: {:?}",
            outcome.epoch_loss
        );
        // The pruned channels survive training as exact zeros.
        let conv2 = net.segments()[1]
            .iter()
            .find_map(|l| match l {
                Layer::Conv2d(c) => Some(c),
                _ => None,
            })
            .unwrap();
        assert!(conv2.sparse_hint());
        let zeros = conv2.weight().as_slice().iter().filter(|&&w| w == 0.0).count();
        assert!(zeros > 0, "pruned channels were resurrected by finetuning");
    }

    #[test]
    fn finetuning_is_byte_identical_across_worker_counts() {
        let n = network(42).architecture().compressible_layers().len();
        let policy = aggressive_policy(n);
        let data = SyntheticDataset::generate(3, 8, 40, 0.05, 43);
        let mut bits: Vec<Vec<u32>> = Vec::new();
        for threads in [1usize, 4] {
            let mut net = network(42);
            let mut config = FinetuneConfig::for_exits(2);
            config.threads = threads;
            let outcome =
                finetune_compressed(&mut net, &policy, data.train(), data.test(), &config).unwrap();
            let mut all = Vec::new();
            for exit in 0..net.num_exits() {
                for layer in net.segments()[exit].iter().chain(&net.branches()[exit]) {
                    let w = match layer {
                        Layer::Conv2d(c) => c.weight(),
                        Layer::Dense(d) => d.weight(),
                        _ => continue,
                    };
                    all.extend(w.as_slice().iter().map(|v| v.to_bits()));
                }
            }
            all.extend(outcome.epoch_loss.iter().map(|v| v.to_bits()));
            bits.push(all);
        }
        assert_eq!(bits[0], bits[1], "finetuning diverged across worker counts");
    }

    #[test]
    fn finetuning_validates_policy_and_calibration() {
        let mut net = network(44);
        let data = SyntheticDataset::generate(3, 8, 10, 0.05, 45);
        let config = FinetuneConfig::for_exits(2);
        let short = CompressionPolicy::full_precision(1);
        assert!(matches!(
            finetune_compressed(&mut net, &short, data.train(), data.test(), &config),
            Err(CompressError::PolicyLengthMismatch { .. })
        ));
        let n = net.architecture().compressible_layers().len();
        let ok = CompressionPolicy::full_precision(n);
        assert!(matches!(
            finetune_compressed(&mut net, &ok, data.train(), &[], &config),
            Err(CompressError::EmptyCalibrationSet)
        ));
    }
}
