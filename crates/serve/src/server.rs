//! The serving loop itself: worker threads own warmed [`BatchPlan`]s, a
//! dynamic batching window groups admitted requests, a runtime policy (via
//! [`LatencyAdmission`]) picks each request's early exit under its latency
//! budget, and an overload layer ([`OverloadConfig`]) bounds the queue,
//! sheds or degrades under pressure, and supervises the workers.
//!
//! Two execution modes share all decision logic:
//!
//! * **replay** ([`Server::replay`]) runs a pre-recorded request stream on a
//!   virtual clock. Batching, shedding and degradation are planned by the
//!   pure [`plan_overload`] (which reduces to [`compose_batches`] when the
//!   queue is unbounded), so the whole run — responses, shed decisions *and*
//!   queue waits — is deterministic for a fixed stream and chaos seed,
//!   independent of worker count. This is what the tests, the CI chaos
//!   matrix and the `serve_loop/*` / `overload_loop/*` bench families use.
//! * **live** ([`Server::run_live`]) accepts requests pushed from a load
//!   generator and closes windows against the wall clock. Response *content*
//!   is still deterministic for a fixed submission order under the default
//!   overload config; with a bounded queue the shed/degrade decisions read
//!   the *real* queue occupancy and are honestly racy.
//!
//! Admission happens strictly in arrival order before batching, and no
//! outcome feedback reaches the policy, so batch composition can never
//! change a decision — the key to byte-identical responses across thread
//! counts.
//!
//! **Worker supervision** (both modes): a worker that panics mid-batch —
//! injected by a [`ChaosPlan`] or genuine — is caught with `catch_unwind`,
//! its possibly-corrupt plan is recycled through a plan pool for a fresh
//! warmed one, and its in-flight batch is re-enqueued exactly once per loss
//! under the bounded [`OverloadConfig::retry_budget`] with deterministic
//! exponential backoff. A batch that exhausts the budget resolves to
//! [`Verdict::Shed`] with [`ShedReason::RetryExhausted`] — the conservation
//! invariant (every submitted request answered exactly once) survives any
//! panic schedule.
//!
//! [`compose_batches`]: crate::compose_batches

use crate::chaos::{silence_chaos_panics, ChaosPlan};
use crate::overload::{
    plan_overload, pressure_exit_cap, AdmitOutcome, OverloadConfig, OverloadPlan, ShedPolicy,
    ShedReason,
};
use crate::window::WindowConfig;
use crate::{percentile, Request, Response, Result, ServeError, ServeReport, Verdict};
use ie_nn::quant::QuantConfig;
use ie_nn::train::threads_from_env;
use ie_nn::train::{BatchPlanPool, QuantPlanPool};
use ie_nn::{BatchPlan, MultiExitNetwork};
use ie_runtime::LatencyAdmission;
use ie_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// The dynamic batching window (size-N / deadline-T close rule).
    pub window: WindowConfig,
    /// Worker threads; each owns one warmed [`BatchPlan`].
    pub threads: usize,
    /// Overload protection: queue bound, shed policy, retry budget. The
    /// default (unbounded, [`ShedPolicy::Reject`], one retry) reproduces
    /// the original unbounded-queue serving behaviour exactly.
    pub overload: OverloadConfig,
}

impl ServeConfig {
    /// A configuration with the given window and thread count and default
    /// overload protection (unbounded queue).
    pub fn new(window: WindowConfig, threads: usize) -> Self {
        ServeConfig { window, threads, overload: OverloadConfig::default() }
    }

    /// Validates the window, thread count and overload configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero thread count or an
    /// invalid window/overload configuration.
    pub fn validate(&self) -> Result<()> {
        self.window.validate()?;
        self.overload.validate()?;
        if self.threads == 0 {
            return Err(ServeError::InvalidConfig("server needs at least one worker".into()));
        }
        Ok(())
    }
}

/// Worker-thread count for the server: `IE_SERVE_THREADS` via the shared
/// [`threads_from_env`] helper (same parsing, fallback and warn-once
/// behaviour as `IE_EVAL_THREADS` / `IE_FLEET_THREADS`) — thread count never
/// changes response content, only throughput.
pub fn serve_threads() -> usize {
    threads_from_env("IE_SERVE_THREADS")
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// One response per request, in request order (replay) or id order
    /// (live). Deterministic for a fixed stream and chaos seed.
    pub responses: Vec<Response>,
    /// Aggregate statistics; see [`ServeReport`] for what is deterministic.
    pub report: ServeReport,
}

/// How one planned batch ultimately resolved under supervision.
enum Resolution {
    /// The batch ran to completion (possibly after retries).
    Completed { verdicts: Vec<Verdict>, compute_s: f64 },
    /// Every attempt lost its worker; the members are shed.
    Exhausted,
}

/// Spare-plan pools used by supervision to recycle a panicked worker's
/// plan: the corrupt plan is dropped and a fresh warmed one is taken from
/// the pool (which builds one when empty — the same fallback the caller's
/// pool uses at construction).
struct PlanSpares {
    plain: Mutex<BatchPlanPool>,
    quant: Mutex<QuantPlanPool>,
}

impl PlanSpares {
    fn new() -> Self {
        PlanSpares {
            plain: Mutex::new(BatchPlanPool::new()),
            quant: Mutex::new(QuantPlanPool::new()),
        }
    }
}

/// Replaces a lost worker's plan from the spare pools.
fn recycle_plan(
    network: &MultiExitNetwork,
    quant: Option<&QuantConfig>,
    spares: &PlanSpares,
    max_batch: usize,
) -> Result<BatchPlan> {
    match quant {
        None => Ok(spares
            .plain
            .lock()
            .map_err(|_| poisoned("serve spare plans"))?
            .take(network, max_batch)),
        Some(q) => spares
            .quant
            .lock()
            .map_err(|_| poisoned("serve spare plans"))?
            .take(network, q, max_batch)
            .map_err(ServeError::from),
    }
}

/// Deterministic exponential backoff before a lost batch's retry runs:
/// 1 ms · 2^attempt, capped at 16 ms. A pure function of the attempt
/// number — never of the worker or the clock — so chaos replays stay
/// reproducible.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(1u64 << attempt.min(4))
}

/// An inference server over one multi-exit network. Worker plans are taken
/// out of a caller-owned pool at construction (the warm handoff) and
/// returned with [`Server::into_plans`].
pub struct Server<'n> {
    network: &'n MultiExitNetwork,
    config: ServeConfig,
    plans: Vec<BatchPlan>,
    /// `Some` for a quantized server — supervision needs it to rebuild a
    /// lost worker's plan with the same quantization.
    quant: Option<QuantConfig>,
}

impl std::fmt::Debug for Server<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("workers", &self.plans.len())
            .finish()
    }
}

impl<'n> Server<'n> {
    /// Builds an `f32` server: takes `config.threads` warmed plans sized for
    /// the batching window out of `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid configuration.
    pub fn new(
        network: &'n MultiExitNetwork,
        config: ServeConfig,
        pool: &mut BatchPlanPool,
    ) -> Result<Self> {
        config.validate()?;
        let plans =
            (0..config.threads).map(|_| pool.take(network, config.window.max_batch)).collect();
        Ok(Server { network, config, plans, quant: None })
    }

    /// Builds a server running the **integer** engine: each worker plan is
    /// a quantized [`BatchPlan`] baked (or repacked) for `quant`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid configuration
    /// and propagates quantization errors from plan building.
    pub fn new_quantized(
        network: &'n MultiExitNetwork,
        quant: &QuantConfig,
        config: ServeConfig,
        pool: &mut QuantPlanPool,
    ) -> Result<Self> {
        config.validate()?;
        let plans = (0..config.threads)
            .map(|_| pool.take(network, quant, config.window.max_batch))
            .collect::<std::result::Result<Vec<_>, ie_nn::NnError>>()
            .map_err(ServeError::from)?;
        Ok(Server { network, config, plans, quant: Some(quant.clone()) })
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Tears the server down, handing the worker plans back so the caller
    /// can [`BatchPlanPool::put`] (or [`QuantPlanPool::put`]) them for the
    /// next server. A plan recycled after a worker loss is handed back in
    /// place of the one that died.
    pub fn into_plans(self) -> Vec<BatchPlan> {
        self.plans
    }

    fn check_admission(&self, admission: &LatencyAdmission) -> Result<()> {
        if admission.num_exits() != self.network.num_exits() {
            return Err(ServeError::InvalidConfig(format!(
                "admission table covers {} exits but the network has {}",
                admission.num_exits(),
                self.network.num_exits()
            )));
        }
        Ok(())
    }

    /// Serves a pre-recorded, arrival-ordered request stream on the virtual
    /// clock. Responses come back in request order and are byte-identical
    /// across worker counts and repeated runs; queue-wait statistics, shed
    /// decisions and the chaos counters in the report are deterministic too,
    /// while latency percentiles and throughput fold in measured compute
    /// time. Equivalent to [`Server::replay_chaotic`] with no chaos.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for an unsorted stream,
    /// [`ServeError::InvalidConfig`] for an admission table that does not
    /// match the network, [`ServeError::WorkerLost`] when a worker dies
    /// outside supervision, and propagates inference errors.
    pub fn replay(
        &mut self,
        admission: &mut LatencyAdmission,
        requests: &[Request],
    ) -> Result<ServeOutcome> {
        self.replay_chaotic(admission, requests, &ChaosPlan::none())
    }

    /// [`Server::replay`] under a chaos schedule: `chaos` may collapse
    /// arrivals into bursts, stall workers, and panic them mid-batch. All
    /// injections are keyed on *what* is perturbed (batch index, attempt,
    /// submission index) — never on worker identity or wall clock — so for
    /// a fixed seed the outcome stays byte-identical across worker counts
    /// and repeated runs, panics and all.
    ///
    /// # Errors
    ///
    /// See [`Server::replay`].
    pub fn replay_chaotic(
        &mut self,
        admission: &mut LatencyAdmission,
        requests: &[Request],
        chaos: &ChaosPlan,
    ) -> Result<ServeOutcome> {
        self.check_admission(admission)?;
        if chaos.is_active() {
            silence_chaos_panics();
        }
        // 1. Chaos may squeeze the arrival process into bursts — this is an
        //    input perturbation, decided before anything reads the stream.
        let mut arrivals: Vec<f64> = requests.iter().map(|r| r.arrival_s).collect();
        chaos.burstify_arrivals(&mut arrivals);
        // 2. Admission control in strict arrival order, before any batching:
        //    each decision depends only on the request's own budget.
        let decisions: Vec<Option<usize>> =
            requests.iter().map(|r| admission.admit(r.id, r.budget_s)).collect();
        let budgets: Vec<f64> = requests.iter().map(|r| r.budget_s).collect();
        // 3. The pure overload planner: windows, sheds, degradations and the
        //    modeled service schedule, all on the virtual clock.
        let plan = plan_overload(
            &arrivals,
            &budgets,
            &decisions,
            admission.exit_cost_s(),
            &self.config.window,
            &self.config.overload,
        )?;
        debug_assert!(plan.check_conservation().is_ok(), "planner broke conservation");
        // 4. Supervised execution of the planned batches.
        let exec = self.run_supervised(&plan, requests, chaos)?;
        // 5. Merge everything back into request order.
        let mut responses: Vec<Response> = requests
            .iter()
            .zip(&plan.outcomes)
            .map(|(r, outcome)| {
                let verdict = match outcome {
                    AdmitOutcome::Rejected => Verdict::Rejected,
                    AdmitOutcome::Shed(reason) => Verdict::Shed { reason: *reason },
                    // Placeholder — overwritten from the batch verdicts below.
                    AdmitOutcome::Scheduled { .. } => Verdict::Rejected,
                };
                Response { id: r.id, verdict }
            })
            .collect();
        let rejected = plan.outcomes.iter().filter(|o| matches!(o, AdmitOutcome::Rejected)).count();
        let mut shed = plan.shed();
        let mut served = 0usize;
        let mut deadline_met = 0usize;
        let mut per_exit = vec![0usize; self.network.num_exits()];
        let mut waits = Vec::new();
        let mut completed: Vec<(f64, Vec<f64>, f64)> = Vec::new();
        let mut compute_s = 0.0;
        for (batch, resolution) in plan.batches.iter().zip(&exec.resolutions) {
            match resolution {
                Resolution::Completed { verdicts, compute_s: c } => {
                    compute_s += c;
                    let mut member_arrivals = Vec::with_capacity(batch.members.len());
                    for (&(i, _), verdict) in batch.members.iter().zip(verdicts) {
                        responses[i].verdict = verdict.clone();
                        if let Verdict::Served { exit, .. } = verdict {
                            per_exit[*exit] += 1;
                        }
                        served += 1;
                        waits.push(batch.close_s - arrivals[i]);
                        member_arrivals.push(arrivals[i]);
                        // Goodput on the deterministic service model: did the
                        // modeled completion meet the budget?
                        if batch.done_s - arrivals[i] <= budgets[i] {
                            deadline_met += 1;
                        }
                    }
                    completed.push((batch.close_s, member_arrivals, *c));
                }
                Resolution::Exhausted => {
                    for &(i, _) in &batch.members {
                        responses[i].verdict = Verdict::Shed { reason: ShedReason::RetryExhausted };
                        shed += 1;
                    }
                }
            }
        }
        // 6. Latency model: batches start at their (virtual) close time or
        //    when a worker frees up, and run for their measured compute time.
        let (latencies, first_arrival, last_done) =
            model_latencies(&completed, self.config.threads);
        let makespan_s = if latencies.is_empty() { 0.0 } else { last_done - first_arrival };
        let report = build_report(ReportParts {
            submitted: requests.len(),
            served,
            rejected,
            shed,
            degraded: plan.degraded,
            retried: exec.retried,
            restarted: exec.restarted,
            stalled: exec.stalled,
            deadline_met,
            per_exit,
            batches: plan.batches.len(),
            waits,
            latencies,
            compute_s,
            makespan_s,
        });
        debug_assert!(report.conservation_holds(), "replay broke request conservation");
        Ok(ServeOutcome { responses, report })
    }

    /// Runs the planned batches on the worker threads under supervision:
    /// jobs are `(batch, attempt)` pairs in a shared queue; a panicking
    /// worker is caught, its plan recycled, and the batch re-enqueued with
    /// the next attempt number until the retry budget exhausts. Pull order
    /// is racy but resolution content is not — each batch's fate depends
    /// only on its own `(batch, attempt)` chaos draws.
    fn run_supervised(
        &mut self,
        plan: &OverloadPlan,
        requests: &[Request],
        chaos: &ChaosPlan,
    ) -> Result<ExecOutcome> {
        let network = self.network;
        let retry_budget = self.config.overload.retry_budget;
        let max_batch = self.config.window.max_batch;
        let quant = self.quant.clone();
        let spares = PlanSpares::new();
        let jobs: Mutex<VecDeque<(usize, u32)>> =
            Mutex::new((0..plan.batches.len()).map(|b| (b, 0)).collect());
        let remaining = AtomicUsize::new(plan.batches.len());
        let resolutions: Mutex<Vec<Option<Resolution>>> =
            Mutex::new((0..plan.batches.len()).map(|_| None).collect());
        let aborted = AtomicBool::new(false);
        let (restarted, retried, stalled) =
            (AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0));
        let joined: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .plans
                .iter_mut()
                .map(|plan_buf| {
                    let (jobs, remaining, resolutions, aborted) =
                        (&jobs, &remaining, &resolutions, &aborted);
                    let (restarted, retried, stalled) = (&restarted, &retried, &stalled);
                    let (spares, quant) = (&spares, &quant);
                    scope.spawn(move || -> Result<()> {
                        loop {
                            if aborted.load(Ordering::Relaxed) {
                                return Ok(());
                            }
                            let job = jobs.lock().map_err(|_| poisoned("serve jobs"))?.pop_front();
                            let Some((b, attempt)) = job else {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    return Ok(());
                                }
                                // Another worker still holds an unresolved
                                // batch that may yet be re-enqueued.
                                std::thread::yield_now();
                                continue;
                            };
                            let batch = &plan.batches[b];
                            if let Some(ms) = chaos.stall_ms(b as u64, attempt) {
                                stalled.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(ms));
                            }
                            let inputs: Vec<&Tensor> =
                                batch.members.iter().map(|&(i, _)| &requests[i].input).collect();
                            let exits: Vec<usize> = batch.members.iter().map(|&(_, e)| e).collect();
                            let t0 = Instant::now();
                            let attempt_run = catch_unwind(AssertUnwindSafe(|| {
                                chaos.maybe_panic(b as u64, attempt);
                                run_batch(network, plan_buf, &inputs, &exits)
                            }));
                            match attempt_run {
                                Ok(Ok(verdicts)) => {
                                    resolutions.lock().map_err(|_| poisoned("serve results"))?[b] =
                                        Some(Resolution::Completed {
                                            verdicts,
                                            compute_s: t0.elapsed().as_secs_f64(),
                                        });
                                    remaining.fetch_sub(1, Ordering::Release);
                                }
                                Ok(Err(e)) => {
                                    // A genuine inference error is not a
                                    // worker loss: abort the run, waking the
                                    // siblings out of their idle spin.
                                    aborted.store(true, Ordering::Relaxed);
                                    return Err(e);
                                }
                                Err(_panic) => {
                                    // Worker lost mid-batch: recycle the
                                    // possibly-corrupt plan, back off, and
                                    // either retry the batch once more or
                                    // shed its members.
                                    restarted.fetch_add(1, Ordering::Relaxed);
                                    match recycle_plan(network, quant.as_ref(), spares, max_batch) {
                                        Ok(fresh) => *plan_buf = fresh,
                                        Err(e) => {
                                            aborted.store(true, Ordering::Relaxed);
                                            return Err(e);
                                        }
                                    }
                                    if attempt < retry_budget {
                                        std::thread::sleep(backoff(attempt));
                                        retried.fetch_add(batch.members.len(), Ordering::Relaxed);
                                        jobs.lock()
                                            .map_err(|_| poisoned("serve jobs"))?
                                            .push_back((b, attempt + 1));
                                    } else {
                                        resolutions
                                            .lock()
                                            .map_err(|_| poisoned("serve results"))?[b] =
                                            Some(Resolution::Exhausted);
                                        remaining.fetch_sub(1, Ordering::Release);
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(worker, h)| {
                    h.join().unwrap_or_else(|_| {
                        Err(ServeError::WorkerLost(format!(
                            "serve worker {worker} panicked outside supervision"
                        )))
                    })
                })
                .collect()
        });
        for r in joined {
            r?;
        }
        let resolutions = resolutions
            .into_inner()
            .map_err(|_| poisoned("serve results"))?
            .into_iter()
            .map(|r| r.ok_or_else(|| ServeError::WorkerLost("a batch was never resolved".into())))
            .collect::<Result<Vec<_>>>()?;
        Ok(ExecOutcome {
            resolutions,
            restarted: restarted.into_inner(),
            retried: retried.into_inner(),
            stalled: stalled.into_inner(),
        })
    }

    /// Runs the live server: spawns the workers, hands the load generator a
    /// [`LiveHandle`] to push requests through, and shuts down (draining the
    /// queue) when the generator returns. Response content is deterministic
    /// for a fixed submission order under the default overload config;
    /// timing is wall-clock. Equivalent to [`Server::run_live_chaotic`]
    /// with no chaos.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a mismatched admission
    /// table, [`ServeError::WorkerLost`] when a worker dies outside
    /// supervision, and propagates inference errors.
    pub fn run_live<F>(&mut self, admission: &mut LatencyAdmission, load: F) -> Result<ServeOutcome>
    where
        F: FnOnce(&LiveHandle<'_>),
    {
        self.run_live_chaotic(admission, &ChaosPlan::none(), load)
    }

    /// [`Server::run_live`] under a chaos schedule: submissions may be held
    /// and released in bursts, and workers may stall or panic mid-batch —
    /// supervision catches the panic, recycles the plan, re-enqueues the
    /// batch at the queue front (preserving arrival order) with backoff,
    /// and sheds it as [`ShedReason::RetryExhausted`] past the retry
    /// budget. Live chaos perturbs *timing*; per-request verdicts stay
    /// content-deterministic because exits are fixed at submission.
    ///
    /// # Errors
    ///
    /// See [`Server::run_live`].
    pub fn run_live_chaotic<F>(
        &mut self,
        admission: &mut LatencyAdmission,
        chaos: &ChaosPlan,
        load: F,
    ) -> Result<ServeOutcome>
    where
        F: FnOnce(&LiveHandle<'_>),
    {
        self.check_admission(admission)?;
        if chaos.is_active() {
            silence_chaos_panics();
        }
        let shared = LiveShared {
            state: Mutex::new(LiveState { queue: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
        };
        let num_exits = self.network.num_exits();
        let results = Mutex::new(LiveResults::new(num_exits));
        let spares = PlanSpares::new();
        let started = Instant::now();
        let ctx = LiveCtx {
            network: self.network,
            shared: &shared,
            results: &results,
            window: self.config.window,
            overload: self.config.overload,
            chaos: *chaos,
            quant: self.quant.clone(),
            spares: &spares,
        };
        let submitted = AtomicUsize::new(0);
        let joined: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .plans
                .iter_mut()
                .map(|plan| {
                    let ctx = &ctx;
                    scope.spawn(move || live_worker(ctx, plan))
                })
                .collect();
            let handle = LiveHandle {
                ctx: &ctx,
                admission: Mutex::new(admission),
                burst: Mutex::new(BurstState::default()),
                num_exits,
                submitted: &submitted,
            };
            load(&handle);
            // A partial chaos burst may still be held back — release it
            // before shutdown so conservation holds.
            let flushed = handle.flush_pending();
            // Shutdown must reach the workers even if a panicking worker
            // poisoned the queue — the state (a flag and a drainable queue)
            // is still structurally sound, so recover it and close.
            match shared.state.lock() {
                Ok(mut st) => st.closed = true,
                Err(p) => p.into_inner().closed = true,
            }
            shared.cond.notify_all();
            let mut joined: Vec<Result<()>> = handles
                .into_iter()
                .enumerate()
                .map(|(worker, h)| {
                    h.join().unwrap_or_else(|_| {
                        Err(ServeError::WorkerLost(format!(
                            "serve worker {worker} panicked outside supervision"
                        )))
                    })
                })
                .collect();
            joined.push(flushed);
            joined
        });
        let makespan_s = started.elapsed().as_secs_f64();
        for r in joined {
            r?;
        }
        let mut res = results.into_inner().map_err(|_| poisoned("serve results"))?;
        res.responses.sort_by_key(|r| r.id);
        let report = build_report(ReportParts {
            submitted: submitted.into_inner(),
            served: res.served,
            rejected: res.rejected,
            shed: res.shed,
            degraded: res.degraded,
            retried: res.retried,
            restarted: res.restarted,
            stalled: res.stalled,
            deadline_met: res.deadline_met,
            per_exit: res.per_exit,
            batches: res.batches,
            waits: res.waits,
            latencies: res.latencies,
            compute_s: res.compute_s,
            makespan_s,
        });
        debug_assert!(report.conservation_holds(), "live serving broke request conservation");
        Ok(ServeOutcome { responses: res.responses, report })
    }
}

/// What [`Server::run_supervised`] hands back to the merge step.
struct ExecOutcome {
    resolutions: Vec<Resolution>,
    restarted: usize,
    retried: usize,
    stalled: usize,
}

/// Runs one batch to every exit its requests were admitted to, shallowest
/// first: the first exit pays the shared trunk once, deeper exits continue
/// incrementally from the cached state (the paper's incremental inference,
/// batched). `exits[i]` is the target exit of `inputs[i]`.
fn run_batch(
    network: &MultiExitNetwork,
    plan: &mut BatchPlan,
    inputs: &[&Tensor],
    exits: &[usize],
) -> Result<Vec<Verdict>> {
    let mut targets = exits.to_vec();
    targets.sort_unstable();
    targets.dedup();
    let mut verdicts = vec![Verdict::Rejected; exits.len()];
    let mut first = true;
    for &exit in &targets {
        let out = if first {
            network.forward_to_exit_batch_with(plan, inputs, exit).map_err(ServeError::from)?
        } else {
            network.continue_to_exit_batch_with(plan, exit).map_err(ServeError::from)?
        };
        first = false;
        for (i, &target) in exits.iter().enumerate() {
            if target == exit {
                verdicts[i] = Verdict::Served {
                    exit,
                    prediction: out.prediction(i),
                    confidence: out.confidence(i),
                };
            }
        }
    }
    Ok(verdicts)
}

/// Deterministic multi-server queueing model over the virtual clock: each
/// completed batch `(close_s, member arrivals, measured compute)` starts at
/// its close time or when one of `servers` workers frees up, whichever is
/// later, and occupies that worker for its compute time. Returns one
/// latency (completion − arrival) per member in batch order, the earliest
/// member arrival, and the completion time of the last batch.
fn model_latencies(completed: &[(f64, Vec<f64>, f64)], servers: usize) -> (Vec<f64>, f64, f64) {
    let mut free = vec![f64::NEG_INFINITY; servers.max(1)];
    let mut latencies = Vec::new();
    let mut first_arrival = f64::INFINITY;
    let mut last_done = f64::NEG_INFINITY;
    for (close_s, member_arrivals, compute_s) in completed {
        let (slot, &soonest) =
            free.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).expect("at least one server");
        let start = close_s.max(soonest);
        let done = start + compute_s;
        free[slot] = done;
        last_done = last_done.max(done);
        for &arrival in member_arrivals {
            latencies.push(done - arrival);
            first_arrival = first_arrival.min(arrival);
        }
    }
    (latencies, first_arrival, last_done)
}

/// Everything [`build_report`] folds into a [`ServeReport`].
struct ReportParts {
    submitted: usize,
    served: usize,
    rejected: usize,
    shed: usize,
    degraded: usize,
    retried: usize,
    restarted: usize,
    stalled: usize,
    deadline_met: usize,
    per_exit: Vec<usize>,
    batches: usize,
    waits: Vec<f64>,
    latencies: Vec<f64>,
    compute_s: f64,
    makespan_s: f64,
}

fn build_report(parts: ReportParts) -> ServeReport {
    let rate = |count: usize| {
        if parts.makespan_s > 0.0 {
            count as f64 / parts.makespan_s
        } else {
            0.0
        }
    };
    ServeReport {
        submitted: parts.submitted,
        served: parts.served,
        rejected: parts.rejected,
        shed: parts.shed,
        degraded: parts.degraded,
        retried: parts.retried,
        restarted: parts.restarted,
        stalled: parts.stalled,
        deadline_met: parts.deadline_met,
        per_exit: parts.per_exit,
        batches: parts.batches,
        mean_batch_fill: if parts.batches > 0 {
            parts.served as f64 / parts.batches as f64
        } else {
            0.0
        },
        wait_p50_s: percentile(&parts.waits, 0.50),
        wait_p99_s: percentile(&parts.waits, 0.99),
        latency_p50_s: percentile(&parts.latencies, 0.50),
        latency_p99_s: percentile(&parts.latencies, 0.99),
        throughput_rps: rate(parts.served),
        goodput_rps: rate(parts.deadline_met),
        compute_s: parts.compute_s,
    }
}

// ---------------------------------------------------------------------------
// Live mode plumbing
// ---------------------------------------------------------------------------

/// A shared mutex poisoned by a panicking worker: degrade to a recoverable
/// [`ServeError::WorkerLost`] instead of cascading the panic into the caller.
fn poisoned(what: &str) -> ServeError {
    ServeError::WorkerLost(format!("{what} mutex poisoned by a panicked worker"))
}

struct LiveRequest {
    id: u64,
    exit: usize,
    input: Tensor,
    arrival: Instant,
    budget_s: f64,
    attempt: u32,
}

struct LiveState {
    queue: VecDeque<LiveRequest>,
    closed: bool,
}

struct LiveShared {
    state: Mutex<LiveState>,
    cond: Condvar,
}

struct LiveResults {
    responses: Vec<Response>,
    waits: Vec<f64>,
    latencies: Vec<f64>,
    compute_s: f64,
    batches: usize,
    served: usize,
    rejected: usize,
    shed: usize,
    degraded: usize,
    retried: usize,
    restarted: usize,
    stalled: usize,
    deadline_met: usize,
    per_exit: Vec<usize>,
}

impl LiveResults {
    fn new(num_exits: usize) -> Self {
        LiveResults {
            responses: Vec::new(),
            waits: Vec::new(),
            latencies: Vec::new(),
            compute_s: 0.0,
            batches: 0,
            served: 0,
            rejected: 0,
            shed: 0,
            degraded: 0,
            retried: 0,
            restarted: 0,
            stalled: 0,
            deadline_met: 0,
            per_exit: vec![0; num_exits],
        }
    }
}

/// Shared context of the live workers and the submission path.
struct LiveCtx<'a> {
    network: &'a MultiExitNetwork,
    shared: &'a LiveShared,
    results: &'a Mutex<LiveResults>,
    window: WindowConfig,
    overload: OverloadConfig,
    chaos: ChaosPlan,
    quant: Option<QuantConfig>,
    spares: &'a PlanSpares,
}

/// Chaos burst buffer on the submission path: a burst-opening submission
/// holds itself and the next few back, then releases them all at once.
#[derive(Default)]
struct BurstState {
    /// Total submissions seen (the chaos burst key).
    counter: u64,
    /// How many more submissions the open burst will hold.
    hold_remaining: usize,
    /// The held-back requests.
    pending: Vec<LiveRequest>,
}

/// The load generator's interface to a running live server.
pub struct LiveHandle<'a> {
    ctx: &'a LiveCtx<'a>,
    admission: Mutex<&'a mut LatencyAdmission>,
    burst: Mutex<BurstState>,
    num_exits: usize,
    submitted: &'a AtomicUsize,
}

impl LiveHandle<'_> {
    /// Submits one request. Admission runs immediately, in submission order;
    /// a rejected request is answered right away, an admitted one is capped
    /// by the degrade policy's pressure reading (if configured), stamped
    /// with its wall-clock arrival and queued — or shed — under the bounded
    /// queue policy. Under chaos, submissions may be held briefly and
    /// released as an arrival burst.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerLost`] when a panicked worker poisoned the
    /// shared queue or results — the load generator can stop submitting and
    /// let `run_live` report the lost worker.
    pub fn submit(&self, id: u64, budget_s: f64, input: Tensor) -> Result<()> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let decision =
            self.admission.lock().map_err(|_| poisoned("serve admission"))?.admit(id, budget_s);
        let Some(admitted_exit) = decision else {
            let mut res = self.ctx.results.lock().map_err(|_| poisoned("serve results"))?;
            res.rejected += 1;
            res.responses.push(Response { id, verdict: Verdict::Rejected });
            return Ok(());
        };
        // Degrade policy, live flavour: the pressure cap reads the *real*
        // queue occupancy at submission. The reading is racy by nature —
        // live pressure is a measurement, not a model — which is why bounded
        // live runs trade away cross-thread-count determinism.
        let mut exit = admitted_exit;
        if self.ctx.overload.policy == ShedPolicy::Degrade {
            let occupancy =
                self.ctx.shared.state.lock().map_err(|_| poisoned("serve queue"))?.queue.len();
            exit =
                exit.min(pressure_exit_cap(occupancy, self.ctx.overload.queue_cap, self.num_exits));
        }
        if exit < admitted_exit {
            self.ctx.results.lock().map_err(|_| poisoned("serve results"))?.degraded += 1;
        }
        let req = LiveRequest { id, exit, input, arrival: Instant::now(), budget_s, attempt: 0 };
        // Chaos burst buffer: a burst-opening submission holds the next few
        // back and releases them together.
        let release = {
            let mut burst = self.burst.lock().map_err(|_| poisoned("serve burst buffer"))?;
            let s = burst.counter;
            burst.counter += 1;
            if burst.hold_remaining == 0 && self.ctx.chaos.burst_at(s) {
                burst.hold_remaining = self.ctx.chaos.burst_len;
            }
            if burst.hold_remaining > 0 {
                burst.pending.push(req);
                burst.hold_remaining -= 1;
                if burst.hold_remaining == 0 {
                    std::mem::take(&mut burst.pending)
                } else {
                    Vec::new()
                }
            } else {
                vec![req]
            }
        };
        if !release.is_empty() {
            self.enqueue(release)?;
        }
        Ok(())
    }

    /// Releases a partially filled chaos burst (called at shutdown so held
    /// requests are still answered — conservation over everything).
    fn flush_pending(&self) -> Result<()> {
        let pending = {
            let mut burst = self.burst.lock().map_err(|_| poisoned("serve burst buffer"))?;
            burst.hold_remaining = 0;
            std::mem::take(&mut burst.pending)
        };
        if pending.is_empty() {
            Ok(())
        } else {
            self.enqueue(pending)
        }
    }

    /// Pushes requests through the bounded queue, applying the shed policy,
    /// and records shed responses.
    fn enqueue(&self, requests: Vec<LiveRequest>) -> Result<()> {
        let mut shed_events: Vec<(u64, ShedReason)> = Vec::new();
        {
            let mut st = self.ctx.shared.state.lock().map_err(|_| poisoned("serve queue"))?;
            for mut req in requests {
                if st.queue.len() >= self.ctx.overload.queue_cap {
                    match self.ctx.overload.policy {
                        ShedPolicy::Reject | ShedPolicy::Degrade => {
                            shed_events.push((req.id, ShedReason::QueueFull));
                            continue;
                        }
                        ShedPolicy::DropOldest => match st.queue.pop_front() {
                            Some(old) => shed_events.push((old.id, ShedReason::DroppedOldest)),
                            None => {
                                shed_events.push((req.id, ShedReason::QueueFull));
                                continue;
                            }
                        },
                    }
                }
                // Re-stamp on actual enqueue: a burst-held request "arrives"
                // when the burst lands.
                req.arrival = Instant::now();
                st.queue.push_back(req);
            }
        }
        self.ctx.shared.cond.notify_all();
        if !shed_events.is_empty() {
            let mut res = self.ctx.results.lock().map_err(|_| poisoned("serve results"))?;
            for (id, reason) in shed_events {
                res.shed += 1;
                res.responses.push(Response { id, verdict: Verdict::Shed { reason } });
            }
        }
        Ok(())
    }
}

/// One live worker: waits for the window to close (size-N, deadline-T or
/// shutdown drain), claims up to `max_batch` requests, runs them on its own
/// plan under supervision and records the responses. A panic mid-batch is
/// caught: the plan is recycled, the batch re-enqueued at the queue front
/// (arrival order preserved) with deterministic backoff, and requests past
/// the retry budget are shed — the condvar queue never deadlocks and no
/// request is executed-and-recorded twice.
fn live_worker(ctx: &LiveCtx<'_>, plan: &mut BatchPlan) -> Result<()> {
    let deadline = Duration::from_secs_f64(ctx.window.deadline_s);
    loop {
        let mut st = ctx.shared.state.lock().map_err(|_| poisoned("serve queue"))?;
        // Wait for work (or shutdown with an empty queue).
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if st.closed {
                return Ok(());
            }
            st = ctx.shared.cond.wait(st).map_err(|_| poisoned("serve queue"))?;
        }
        // Window phase: hold until filled, the deadline passes, or shutdown
        // starts draining. The front's arrival opens the window.
        while let Some(front) = st.queue.front() {
            if st.queue.len() >= ctx.window.max_batch || st.closed {
                break;
            }
            let elapsed = front.arrival.elapsed();
            if elapsed >= deadline {
                break;
            }
            let (guard, _) = ctx
                .shared
                .cond
                .wait_timeout(st, deadline - elapsed)
                .map_err(|_| poisoned("serve queue"))?;
            st = guard;
        }
        if st.queue.is_empty() {
            // Another worker claimed the window while this one slept.
            continue;
        }
        let n = st.queue.len().min(ctx.window.max_batch);
        let mut batch: Vec<LiveRequest> = st.queue.drain(..n).collect();
        drop(st);
        // Chaos keys on the batch head's id and the highest member attempt —
        // stable content keys, never worker identity.
        let key = batch.first().map_or(0, |r| r.id);
        let attempt = batch.iter().map(|r| r.attempt).max().unwrap_or(0);
        if let Some(ms) = ctx.chaos.stall_ms(key, attempt) {
            ctx.results.lock().map_err(|_| poisoned("serve results"))?.stalled += 1;
            std::thread::sleep(Duration::from_millis(ms));
        }
        let close = Instant::now();
        let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
        let exits: Vec<usize> = batch.iter().map(|r| r.exit).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            ctx.chaos.maybe_panic(key, attempt);
            run_batch(ctx.network, plan, &inputs, &exits)
        }));
        match outcome {
            Ok(Ok(verdicts)) => {
                let done = Instant::now();
                let mut res = ctx.results.lock().map_err(|_| poisoned("serve results"))?;
                res.batches += 1;
                res.compute_s += (done - close).as_secs_f64();
                for (req, verdict) in batch.iter().zip(verdicts) {
                    res.served += 1;
                    if let Verdict::Served { exit, .. } = verdict {
                        res.per_exit[exit] += 1;
                    }
                    let latency = (done - req.arrival).as_secs_f64();
                    if latency <= req.budget_s {
                        res.deadline_met += 1;
                    }
                    res.waits.push((close - req.arrival).as_secs_f64());
                    res.latencies.push(latency);
                    res.responses.push(Response { id: req.id, verdict });
                }
            }
            Ok(Err(e)) => return Err(e),
            Err(_panic) => {
                // Supervision: recycle the plan, back off, re-enqueue the
                // survivors at the front (arrival order preserved — they were
                // at the front when claimed), shed the exhausted.
                *plan = recycle_plan(
                    ctx.network,
                    ctx.quant.as_ref(),
                    ctx.spares,
                    ctx.window.max_batch,
                )?;
                std::thread::sleep(backoff(attempt));
                let mut res = ctx.results.lock().map_err(|_| poisoned("serve results"))?;
                res.restarted += 1;
                let mut exhausted = Vec::new();
                let mut retry = Vec::new();
                for mut req in batch.drain(..) {
                    if req.attempt < ctx.overload.retry_budget {
                        req.attempt += 1;
                        retry.push(req);
                    } else {
                        exhausted.push(req.id);
                    }
                }
                res.retried += retry.len();
                for id in exhausted {
                    res.shed += 1;
                    res.responses.push(Response {
                        id,
                        verdict: Verdict::Shed { reason: ShedReason::RetryExhausted },
                    });
                }
                drop(res);
                if !retry.is_empty() {
                    let mut st = ctx.shared.state.lock().map_err(|_| poisoned("serve queue"))?;
                    for req in retry.into_iter().rev() {
                        st.queue.push_front(req);
                    }
                    drop(st);
                    ctx.shared.cond.notify_all();
                }
            }
        }
    }
}
