//! Fleet-scale intermittent simulation demo: advance a population of
//! heterogeneous energy-harvesting devices in parallel and print the merged,
//! order-invariant aggregate.
//!
//! Knobs (all environment variables):
//!
//! * `IE_FLEET_DEVICES` — population size (default 4096),
//! * `IE_FLEET_SEED`    — master seed every device stream forks from
//!   (default `0xF1EE7`),
//! * `IE_FLEET_THREADS` — worker threads (default: available parallelism).
//!
//! Flags:
//!
//! * `--out <path>`  — also write the aggregate-metrics JSON to `path`
//!   (byte-identical for any worker count — this is what the CI
//!   `fleet-determinism` job diffs),
//! * `--probe <id>`  — capture device `id` inside the fleet run, then replay
//!   it in isolation and fail (exit 1) unless the two outcomes match bit for
//!   bit.

use ie_core::fleet::{fleet_threads, FleetConfig, FleetSimulator};
use ie_core::{DeployedModel, ExperimentConfig};

fn env_u64(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
            eprintln!("warning: ignoring {var}={raw:?} (not a non-negative integer)");
            default
        }),
        Err(_) => default,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path: Option<String> = None;
    let mut probe: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }));
            }
            "--probe" => {
                let raw = args.next().unwrap_or_else(|| {
                    eprintln!("error: --probe needs a device id");
                    std::process::exit(2);
                });
                probe = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --probe id must be a non-negative integer, got {raw:?}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("error: unknown argument {other:?} (expected --out/--probe)");
                std::process::exit(2);
            }
        }
    }

    let mut config =
        FleetConfig::new(env_u64("IE_FLEET_DEVICES", 4096), env_u64("IE_FLEET_SEED", 0xF1EE7));
    config.threads = fleet_threads();
    config.probe_device = probe;

    let model = DeployedModel::uncompressed_reference(&ExperimentConfig::paper_default())
        .expect("reference model builds");
    let fleet = FleetSimulator::new(&config);

    println!(
        "fleet: {} devices, master seed {:#x}, {} worker thread(s)",
        config.num_devices, config.master_seed, config.threads
    );
    let started = std::time::Instant::now();
    let report = match fleet.run(&model) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: fleet run failed: {err}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();
    let m = &report.metrics;

    let device_steps = m.total_events;
    println!(
        "advanced {} device-events in {:.2?} ({:.0} device-steps/s)",
        device_steps,
        elapsed,
        device_steps as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "completion {:.4}  accuracy(all) {:.4}  incremental {}  recovered boots {}  torn writes {}",
        m.completion_rate(),
        m.accuracy_all_events(),
        m.incremental_events,
        m.recovered_boots,
        m.torn_writes
    );
    println!(
        "energy/inference p50 {:.4} mJ  p99 {:.4} mJ  latency p50 {:.4} s  p99 {:.4} s",
        m.energy_percentile_mj(0.50),
        m.energy_percentile_mj(0.99),
        m.latency_percentile_s(0.50),
        m.latency_percentile_s(0.99)
    );
    println!("digest {:016x}/{:016x}", m.digest_xor, m.digest_sum);

    if let Some(path) = out_path {
        if let Err(err) = std::fs::write(&path, m.to_json()) {
            eprintln!("error: writing {path}: {err}");
            std::process::exit(1);
        }
        println!("wrote aggregate metrics to {path}");
    }

    if let Some(id) = probe {
        let in_fleet = report.probe.expect("validated probe id is always captured");
        let replayed = match fleet.replay_device(&model, id) {
            Ok(outcome) => outcome,
            Err(err) => {
                eprintln!("error: replaying device {id}: {err}");
                std::process::exit(1);
            }
        };
        if in_fleet == replayed {
            println!(
                "probe device {id}: isolated replay matches in-fleet outcome (digest {:016x})",
                in_fleet.digest
            );
        } else {
            eprintln!(
                "error: probe device {id} diverged: in-fleet {in_fleet:?} vs replay {replayed:?}"
            );
            std::process::exit(1);
        }
    }
}
