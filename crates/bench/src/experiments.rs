//! Shared experiment drivers for the paper's figures and tables.

use ie_baselines::{BaselineNetwork, BaselineRunner};
use ie_compress::{CompressionPolicy, LayerPolicy};
use ie_core::{DeployedModel, ExperimentConfig, SimulationReport};
use ie_nn::spec::CompressibleLayer;
use ie_runtime::{AdaptationConfig, AdaptationOutcome, RuntimeAdaptation};
use ie_search::{
    best_uniform_policy, random_search, CompressionEnv, DdpgCompressionSearch, EpisodeStats,
    PolicyOutcome, RewardMode, SearchConfig,
};

/// Convenience error type of the harness.
pub type BenchError = Box<dyn std::error::Error + Send + Sync + 'static>;
/// Convenience result alias of the harness.
pub type BenchResult<T> = std::result::Result<T, BenchError>;

/// A hand-crafted nonuniform policy in the spirit of Fig. 4 — shallow (exit-1)
/// layers kept wide at 8 bits, deep convolutions pruned hard, the two large
/// fully-connected layers driven to 1 bit. It satisfies the 1.15 M-FLOP /
/// 16 KB targets and is used both as a deterministic reference point and as a
/// fallback when a short DDPG search has not yet found a feasible policy.
pub fn reference_nonuniform_policy(layers: &[CompressibleLayer]) -> CompressionPolicy {
    layers
        .iter()
        .map(|l| {
            if l.is_conv {
                if l.first_exit == 0 {
                    LayerPolicy::new(0.5, 8, 8).expect("static policy values are valid")
                } else {
                    LayerPolicy::new(0.25, 4, 8).expect("static policy values are valid")
                }
            } else if l.weight_params > 20_000 {
                LayerPolicy::new(0.35, 1, 8).expect("static policy values are valid")
            } else {
                LayerPolicy::new(0.5, 2, 8).expect("static policy values are valid")
            }
        })
        .collect()
}

/// Results of the compression-side experiments (Fig. 1(b), Fig. 4, Fig. 6).
#[derive(Debug, Clone)]
pub struct CompressionStudy {
    /// Evaluation of the uncompressed full-precision network.
    pub full_precision: PolicyOutcome,
    /// Best uniform policy and its evaluation (the Fig. 1(b) comparison).
    pub uniform: (CompressionPolicy, PolicyOutcome),
    /// The nonuniform policy deployed everywhere else (search result, or the
    /// reference policy when it scores better).
    pub nonuniform: (CompressionPolicy, PolicyOutcome),
    /// Per-episode search history (empty when `search_episodes == 0`).
    pub search_history: Vec<EpisodeStats>,
    /// Whether the deployed nonuniform policy came from the DDPG search.
    pub nonuniform_from_search: bool,
}

/// Runs the compression study: evaluates full precision, the best uniform
/// point and a nonuniform policy obtained by the exit-guided DDPG search
/// (falling back to [`reference_nonuniform_policy`] when the short search does
/// not find something better).
///
/// # Errors
///
/// Propagates environment and search errors.
pub fn compression_study(
    config: &ExperimentConfig,
    search_episodes: usize,
) -> BenchResult<CompressionStudy> {
    let env = CompressionEnv::new(config, RewardMode::ExitGuided)?;
    let n = env.num_layers();
    let full_precision = env.evaluate(&CompressionPolicy::full_precision(n))?;
    let uniform = best_uniform_policy(&env, 10)?;

    let reference_policy = reference_nonuniform_policy(env.layers());
    let reference_outcome = env.evaluate(&reference_policy)?;

    let (mut nonuniform, mut history, mut from_search) =
        ((reference_policy, reference_outcome), Vec::new(), false);
    if search_episodes > 0 {
        let search = DdpgCompressionSearch::new(SearchConfig {
            episodes: search_episodes,
            warmup_episodes: (search_episodes / 4).max(1),
            ..SearchConfig::default()
        });
        let result = search.run(&env)?;
        history = result.history;
        let better = result.best_outcome.feasible
            && result.best_outcome.accuracy_reward >= nonuniform.1.accuracy_reward;
        if better {
            nonuniform = (result.best_policy, result.best_outcome);
            from_search = true;
        }
    }

    Ok(CompressionStudy {
        full_precision,
        uniform,
        nonuniform,
        search_history: history,
        nonuniform_from_search: from_search,
    })
}

/// The result of running one system over the shared environment.
#[derive(Debug, Clone)]
pub struct SystemResult {
    /// System name (matches [`crate::reference::SYSTEM_NAMES`]).
    pub name: String,
    /// Full per-event report.
    pub report: SimulationReport,
}

/// The four-system comparison behind Fig. 5 and the Section V-C/V-D tables.
#[derive(Debug, Clone)]
pub struct SystemComparison {
    /// Our approach followed by the three baselines.
    pub systems: Vec<SystemResult>,
    /// The runtime-adaptation outcome used for "Our Approach".
    pub adaptation: AdaptationOutcome,
    /// The deployed (compressed) multi-exit model.
    pub deployed: DeployedModel,
}

/// Runs the proposed system (compressed multi-exit model + Q-learning runtime)
/// and the three baselines over the same events and power trace.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn system_comparison(
    config: &ExperimentConfig,
    nonuniform: &PolicyOutcome,
    adaptation_episodes: usize,
) -> BenchResult<SystemComparison> {
    let deployed = DeployedModel::new(nonuniform.profile.clone(), config.cost_model());
    let adaptation = RuntimeAdaptation::new(AdaptationConfig {
        episodes: adaptation_episodes.max(1),
        ..AdaptationConfig::default()
    })
    .run(config, &deployed)?;

    let mut systems = vec![SystemResult {
        name: "Our Approach".to_string(),
        report: adaptation.final_report.clone(),
    }];
    let runner = BaselineRunner::new(config);
    for baseline in BaselineNetwork::paper_baselines() {
        let report = runner.run(&baseline)?;
        systems.push(SystemResult { name: baseline.name().to_string(), report });
    }
    Ok(SystemComparison { systems, adaptation, deployed })
}

/// Results of the design-choice ablations described in `DESIGN.md`.
#[derive(Debug, Clone)]
pub struct AblationResults {
    /// (exit-guided reward, final-exit-only reward) — all-event expected
    /// accuracy of the best policy each reward finds.
    pub reward_mode: (PolicyOutcome, PolicyOutcome),
    /// (with incremental inference, without) — all-event accuracy.
    pub incremental: (f64, f64),
    /// (DDPG search, random search, best uniform) — exit-guided reward of the
    /// best feasible policy each search strategy finds.
    pub search_strategy: (f64, f64, f64),
}

/// Runs the ablations. `search_episodes` bounds the DDPG/random search budgets
/// so the whole set stays fast.
///
/// # Errors
///
/// Propagates environment and simulation errors.
pub fn ablations(
    config: &ExperimentConfig,
    search_episodes: usize,
) -> BenchResult<AblationResults> {
    // Reward-mode ablation: search under both rewards, evaluate both winners
    // under the *exit-guided* (deployment-relevant) criterion.
    let guided_env = CompressionEnv::new(config, RewardMode::ExitGuided)?;
    let final_env = CompressionEnv::new(config, RewardMode::FinalExitOnly)?;
    let search = DdpgCompressionSearch::new(SearchConfig {
        episodes: search_episodes.max(4),
        warmup_episodes: (search_episodes / 4).max(1),
        ..SearchConfig::default()
    });
    let guided_best = search.run(&guided_env)?.best_outcome;
    let final_best_policy = search.run(&final_env)?.best_policy;
    let final_best = guided_env.evaluate(&final_best_policy)?;
    // Fall back to the reference policy for the guided arm if the short search
    // found nothing feasible, mirroring `compression_study`.
    let guided_best = if guided_best.feasible {
        guided_best
    } else {
        guided_env.evaluate(&reference_nonuniform_policy(guided_env.layers()))?
    };

    // Incremental-inference ablation on the deployed nonuniform model.
    let deployed = DeployedModel::new(guided_best.profile.clone(), config.cost_model());
    let with_inc = RuntimeAdaptation::new(AdaptationConfig { episodes: 4, ..Default::default() })
        .run(config, &deployed)?;
    let mut no_inc_config = config.clone();
    no_inc_config.incremental_enabled = false;
    let without_inc =
        RuntimeAdaptation::new(AdaptationConfig { episodes: 4, ..Default::default() })
            .run(&no_inc_config, &deployed)?;

    // Search-strategy ablation.
    let random_best = random_search(&guided_env, search_episodes.max(4), 5)?.1;
    let uniform_best = best_uniform_policy(&guided_env, 8)?.1;

    Ok(AblationResults {
        reward_mode: (guided_best.clone(), final_best),
        incremental: (
            with_inc.final_report.accuracy_all_events(),
            without_inc.final_report.accuracy_all_events(),
        ),
        search_strategy: (
            guided_best.accuracy_reward,
            random_best.accuracy_reward,
            uniform_best.accuracy_reward,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ExperimentConfig {
        ExperimentConfig::small_test()
    }

    #[test]
    fn reference_policy_is_feasible_under_paper_targets() {
        let c = ExperimentConfig::paper_default();
        let env = CompressionEnv::new(&c, RewardMode::ExitGuided).unwrap();
        let outcome = env.evaluate(&reference_nonuniform_policy(env.layers())).unwrap();
        assert!(
            outcome.feasible,
            "size {} flops {}",
            outcome.profile.model_size_bytes, outcome.profile.total_flops
        );
        // Nonuniform compression keeps every exit's accuracy above the uniform point.
        let (_, uniform) = best_uniform_policy(&env, 6).unwrap();
        for (n, u) in outcome.profile.exit_accuracy.iter().zip(&uniform.profile.exit_accuracy) {
            assert!(n >= u, "nonuniform {n} vs uniform {u}");
        }
    }

    #[test]
    fn compression_study_without_search_uses_the_reference_policy() {
        let study = compression_study(&config(), 0).unwrap();
        assert!(!study.nonuniform_from_search);
        assert!(study.search_history.is_empty());
        assert!(study.nonuniform.1.feasible);
        assert!(study.uniform.1.feasible);
        // Compression reduces every exit's FLOPs relative to full precision.
        for (c, f) in study
            .nonuniform
            .1
            .profile
            .exit_flops
            .iter()
            .zip(&study.full_precision.profile.exit_flops)
        {
            assert!(c < f);
        }
    }

    #[test]
    fn system_comparison_covers_four_systems() {
        let c = config();
        let study = compression_study(&c, 0).unwrap();
        let comparison = system_comparison(&c, &study.nonuniform.1, 2).unwrap();
        assert_eq!(comparison.systems.len(), 4);
        assert_eq!(comparison.systems[0].name, "Our Approach");
        for s in &comparison.systems {
            assert_eq!(s.report.total_events, c.num_events);
        }
        // The multi-exit system must beat the heavyweight NAS baseline on IEpmJ.
        let ours = comparison.systems[0].report.ie_pmj();
        let sparse = comparison.systems[2].report.ie_pmj();
        assert!(ours > sparse, "ours {ours} vs SpArSeNet {sparse}");
    }
}
