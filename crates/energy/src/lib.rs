//! `ie-energy` — the energy-harvesting substrate.
//!
//! The paper powers a TI MSP432 from a solar harvesting profile. This crate
//! models that environment:
//!
//! * [`PowerTrace`] — harvested power as a function of time, with a synthetic
//!   solar (diurnal + cloud noise) generator, constant and kinetic-burst
//!   profiles, and piecewise traces loaded from samples or CSV text,
//! * [`EnergyStorage`] — the capacitor that buffers harvested energy, with
//!   charging losses and a hard capacity,
//! * [`EventGenerator`] — the random "interesting event" arrivals that trigger
//!   inferences (the paper distributes 500 events over the trace),
//! * [`HarvestSimulator`] — glues trace and storage together and exposes the
//!   *charging-efficiency* observable the runtime RL state uses,
//! * [`fork_seed`] / [`fork_rng`] — hierarchical path-based RNG stream
//!   derivation, the reproducibility backbone of the fleet simulator.
//!
//! Units: time in **seconds**, power in **milliwatts**, energy in
//! **millijoules** (so `power × time = energy` without conversion factors).
//!
//! # Example
//!
//! ```
//! use ie_energy::{EnergyStorage, HarvestSimulator, SolarTrace};
//!
//! let trace = SolarTrace::builder().seed(7).build();
//! let storage = EnergyStorage::new(20.0, 0.8);
//! let mut sim = HarvestSimulator::new(Box::new(trace), storage);
//! sim.advance_to(12.0 * 3_600.0); // harvest until midday
//! assert!(sim.storage().level_mj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod events;
mod seed;
mod simulator;
mod storage;
pub mod test_support;
mod trace;

pub use error::EnergyError;
pub use events::{Event, EventDistribution, EventGenerator};
pub use seed::{fork_rng, fork_seed};
pub use simulator::HarvestSimulator;
pub use storage::EnergyStorage;
pub use trace::{
    ConstantTrace, KineticBurstTrace, PiecewiseTrace, PowerTrace, SolarTrace, SolarTraceBuilder,
    StochasticArrivalTrace,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EnergyError>;
