//! Properties of the overload planner, extending the batching-window
//! partition invariants across the shed/degrade paths: for ANY sorted
//! arrival schedule, budgets, admission decisions, window shape, queue
//! capacity and shed policy —
//!
//! * **conservation**: every request gets exactly one outcome (scheduled,
//!   rejected, or shed), and the planned batches hold exactly the scheduled
//!   requests, once each, in arrival order;
//! * the unbounded planner is **exactly** `compose_batches` over the
//!   admitted sub-stream (the overload layer is a strict extension);
//! * batches respect the size cap, are never empty, and no scheduled
//!   request waits past the window deadline;
//! * degradation only ever *lowers* an exit (and flags it), never invents
//!   capacity, and rejected requests stay rejected whatever the policy.

use ie_serve::{
    compose_batches, plan_overload, AdmitOutcome, OverloadConfig, ShedPolicy, WindowConfig,
};
use proptest::prelude::*;

/// Fixed three-exit cost table (seconds) — the planner only reads relative
/// magnitudes, so one table exercises everything.
const COSTS: [f64; 3] = [0.001, 0.004, 0.009];

fn policy_strategy() -> impl Strategy<Value = ShedPolicy> {
    (0usize..3).prop_map(|i| [ShedPolicy::Reject, ShedPolicy::DropOldest, ShedPolicy::Degrade][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn overload_plan_conserves_requests_across_shed_and_degrade(
        gaps in proptest::collection::vec(0.0f64..0.02, 0..80),
        budgets_raw in proptest::collection::vec(0.0f64..0.04, 80),
        // 0..3 = admitted exit, 3 = rejected by admission.
        decisions_raw in proptest::collection::vec(0usize..4, 80),
        max_batch in 1usize..=9,
        deadline_ms in 0.0f64..15.0,
        queue_cap in 1usize..=12,
        policy in policy_strategy(),
    ) {
        let mut arrivals = Vec::with_capacity(gaps.len());
        let mut t = 0.0;
        for g in &gaps {
            t += g;
            arrivals.push(t);
        }
        let n = arrivals.len();
        let budgets = &budgets_raw[..n];
        let decisions: Vec<Option<usize>> =
            decisions_raw[..n].iter().map(|&d| (d < 3).then_some(d)).collect();
        let window = WindowConfig { max_batch, deadline_s: deadline_ms / 1000.0 };
        let config = OverloadConfig { queue_cap, policy, ..OverloadConfig::default() };
        let plan = plan_overload(&arrivals, budgets, &decisions, &COSTS, &window, &config).unwrap();

        // Conservation: exactly one outcome each, batches = scheduled set.
        prop_assert_eq!(plan.outcomes.len(), n);
        prop_assert!(
            plan.check_conservation().is_ok(),
            "conservation violated: {:?}",
            plan.check_conservation().err()
        );
        let scheduled = plan.scheduled();
        let shed = plan.shed();
        let rejected =
            plan.outcomes.iter().filter(|o| matches!(o, AdmitOutcome::Rejected)).count();
        prop_assert_eq!(scheduled + shed + rejected, n, "outcomes must partition the stream");

        // Rejection is admission's verdict alone — unchanged by overload.
        for (i, d) in decisions.iter().enumerate() {
            prop_assert_eq!(
                d.is_none(),
                matches!(plan.outcomes[i], AdmitOutcome::Rejected),
                "request {} rejection must mirror its admission decision", i
            );
            // Degradation only lowers, and flags exactly when it lowers.
            if let AdmitOutcome::Scheduled { exit, degraded } = plan.outcomes[i] {
                let admitted = d.unwrap();
                prop_assert!(exit <= admitted, "degradation can only lower an exit");
                prop_assert_eq!(degraded, exit < admitted);
                if policy != ShedPolicy::Degrade {
                    prop_assert_eq!(exit, admitted, "only Degrade may touch the exit");
                }
            }
        }

        // Window invariants survive the overload layer.
        let mut degraded_total = 0;
        for b in &plan.batches {
            prop_assert!(!b.members.is_empty(), "no empty windows");
            prop_assert!(b.members.len() <= max_batch, "size cap respected");
            prop_assert!(b.close_s >= b.open_s);
            prop_assert!(b.done_s >= b.start_s && b.start_s >= b.close_s);
            for &(i, exit) in &b.members {
                let wait = b.close_s - arrivals[i];
                prop_assert!(
                    (-1e-9..=window.deadline_s + 1e-9).contains(&wait),
                    "wait {} vs deadline {}", wait, window.deadline_s
                );
                prop_assert!(exit < COSTS.len());
                if matches!(plan.outcomes[i], AdmitOutcome::Scheduled { degraded: true, .. }) {
                    degraded_total += 1;
                }
            }
        }
        prop_assert_eq!(plan.degraded, degraded_total);
        prop_assert!(plan.deadline_met <= scheduled);
    }

    #[test]
    fn unbounded_plan_reduces_to_compose_batches(
        gaps in proptest::collection::vec(0.0f64..0.02, 0..80),
        // 0..3 = admitted exit, 3 = rejected by admission.
        decisions_raw in proptest::collection::vec(0usize..4, 80),
        max_batch in 1usize..=9,
        deadline_ms in 0.0f64..15.0,
    ) {
        let mut arrivals = Vec::with_capacity(gaps.len());
        let mut t = 0.0;
        for g in &gaps {
            t += g;
            arrivals.push(t);
        }
        let n = arrivals.len();
        let decisions: Vec<Option<usize>> =
            decisions_raw[..n].iter().map(|&d| (d < 3).then_some(d)).collect();
        let budgets = vec![1.0; n];
        let window = WindowConfig { max_batch, deadline_s: deadline_ms / 1000.0 };
        let plan = plan_overload(
            &arrivals,
            &budgets,
            &decisions,
            &COSTS,
            &window,
            &OverloadConfig::default(),
        )
        .unwrap();
        prop_assert!(
            plan.check_conservation().is_ok(),
            "conservation violated: {:?}",
            plan.check_conservation().err()
        );
        prop_assert_eq!(plan.shed(), 0, "an unbounded queue never sheds");
        prop_assert_eq!(plan.degraded, 0, "Reject never degrades");

        // The reference: compose_batches over the admitted sub-stream, the
        // exact pipeline the pre-overload server ran.
        let admitted: Vec<usize> = (0..n).filter(|&i| decisions[i].is_some()).collect();
        let admitted_arrivals: Vec<f64> = admitted.iter().map(|&i| arrivals[i]).collect();
        let reference = compose_batches(&admitted_arrivals, &window).unwrap();
        prop_assert_eq!(plan.batches.len(), reference.len());
        for (p, r) in plan.batches.iter().zip(&reference) {
            prop_assert_eq!(p.open_s, r.open_s);
            prop_assert_eq!(p.close_s, r.close_s);
            let positions: Vec<usize> = p.members.iter().map(|&(i, _)| i).collect();
            let expected: Vec<usize> = r.indices.iter().map(|&j| admitted[j]).collect();
            prop_assert_eq!(positions, expected);
        }
    }
}
