use std::fmt;

/// Errors produced by the energy-harvesting substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum EnergyError {
    /// The storage does not hold enough energy for the requested draw.
    InsufficientEnergy {
        /// Energy requested, in millijoules.
        requested_mj: f64,
        /// Energy currently available, in millijoules.
        available_mj: f64,
    },
    /// A negative amount of energy or power was supplied.
    NegativeAmount {
        /// The offending value.
        value: f64,
    },
    /// The simulator was asked to move backwards in time.
    TimeRegression {
        /// Current simulator time, seconds.
        current_s: f64,
        /// Requested (earlier) time, seconds.
        requested_s: f64,
    },
    /// A trace description (CSV text or sample list) could not be parsed.
    InvalidTrace(String),
}

impl fmt::Display for EnergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyError::InsufficientEnergy { requested_mj, available_mj } => write!(
                f,
                "insufficient stored energy: requested {requested_mj:.3} mJ, available {available_mj:.3} mJ"
            ),
            EnergyError::NegativeAmount { value } => {
                write!(f, "energy and power amounts must be non-negative, got {value}")
            }
            EnergyError::TimeRegression { current_s, requested_s } => write!(
                f,
                "cannot advance simulator backwards from {current_s:.3} s to {requested_s:.3} s"
            ),
            EnergyError::InvalidTrace(msg) => write!(f, "invalid power trace: {msg}"),
        }
    }
}

impl std::error::Error for EnergyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs = [
            EnergyError::InsufficientEnergy { requested_mj: 5.0, available_mj: 1.0 },
            EnergyError::NegativeAmount { value: -1.0 },
            EnergyError::TimeRegression { current_s: 10.0, requested_s: 5.0 },
            EnergyError::InvalidTrace("empty".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
