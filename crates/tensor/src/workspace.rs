//! A reusable scratch arena for allocation-free kernel pipelines.
//!
//! The out-parameter kernels ([`crate::gemm_into`], [`crate::im2col_into`],
//! …) need somewhere to write. A [`Workspace`] owns a small set of grow-only
//! `f32` buffers ("slots") that a caller sizes once — typically from a static
//! execution plan — and then borrows on every inference without touching the
//! allocator again. Slots only ever grow, so after the first warm-up pass a
//! steady-state workload performs zero heap allocations.

/// A set of independently borrowable, grow-only `f32` scratch buffers.
///
/// # Example
///
/// ```
/// use ie_tensor::{gemm_into, Workspace};
///
/// let mut ws = Workspace::new();
/// ws.ensure_slot(0, 4); // 2x2 output
/// let a = [1.0, 2.0, 3.0, 4.0];
/// let b = [1.0, 0.0, 0.0, 1.0];
/// gemm_into(&a, &b, &mut ws.slot_mut(0)[..4], 2, 2, 2);
/// assert_eq!(&ws.slot(0)[..4], &a);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    slots: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace with no slots.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of slots currently present.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Capacity (element count) of slot `idx`, or 0 when it does not exist.
    pub fn slot_len(&self, idx: usize) -> usize {
        self.slots.get(idx).map(Vec::len).unwrap_or(0)
    }

    /// Grows slot `idx` to hold at least `len` elements, creating intermediate
    /// slots as needed. Slots never shrink, so once every call site has been
    /// warmed the workspace performs no further allocations. New space is
    /// zero-filled; existing contents are preserved.
    pub fn ensure_slot(&mut self, idx: usize, len: usize) {
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, Vec::new);
        }
        if self.slots[idx].len() < len {
            self.slots[idx].resize(len, 0.0);
        }
    }

    /// Borrows slot `idx` immutably (its full grown extent).
    ///
    /// # Panics
    ///
    /// Panics when the slot does not exist.
    pub fn slot(&self, idx: usize) -> &[f32] {
        &self.slots[idx]
    }

    /// Borrows slot `idx` mutably (its full grown extent).
    ///
    /// # Panics
    ///
    /// Panics when the slot does not exist.
    pub fn slot_mut(&mut self, idx: usize) -> &mut [f32] {
        &mut self.slots[idx]
    }

    /// Borrows two distinct slots mutably at once — the ping-pong pattern a
    /// layer pipeline uses (read the previous activation from one slot while
    /// writing the next into the other).
    ///
    /// # Panics
    ///
    /// Panics when `i == j` or either slot does not exist.
    pub fn pair_mut(&mut self, i: usize, j: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(i, j, "pair_mut requires two distinct slots");
        let (lo, hi) = (i.min(j), i.max(j));
        let (left, right) = self.slots.split_at_mut(hi);
        let (a, b) = (left[lo].as_mut_slice(), right[0].as_mut_slice());
        if i < j {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Zero-fills every slot (contents only; capacities are kept).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_grow_monotonically_and_preserve_contents() {
        let mut ws = Workspace::new();
        ws.ensure_slot(1, 4);
        assert_eq!(ws.num_slots(), 2);
        assert_eq!(ws.slot_len(0), 0);
        assert_eq!(ws.slot_len(1), 4);
        ws.slot_mut(1)[0] = 7.0;
        ws.ensure_slot(1, 2); // smaller request: no shrink
        assert_eq!(ws.slot_len(1), 4);
        ws.ensure_slot(1, 6); // grow keeps the prefix
        assert_eq!(ws.slot_len(1), 6);
        assert_eq!(ws.slot(1)[0], 7.0);
        assert_eq!(ws.slot(1)[5], 0.0);
    }

    #[test]
    fn pair_mut_returns_disjoint_slices_in_order() {
        let mut ws = Workspace::new();
        ws.ensure_slot(0, 2);
        ws.ensure_slot(1, 3);
        {
            let (a, b) = ws.pair_mut(0, 1);
            a[0] = 1.0;
            b[2] = 2.0;
        }
        let (b, a) = ws.pair_mut(1, 0);
        assert_eq!(b.len(), 3);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], 1.0);
        assert_eq!(b[2], 2.0);
    }

    #[test]
    #[should_panic(expected = "distinct slots")]
    fn pair_mut_rejects_aliasing() {
        let mut ws = Workspace::new();
        ws.ensure_slot(0, 1);
        let _ = ws.pair_mut(0, 0);
    }

    #[test]
    fn clear_zeroes_contents_but_keeps_capacity() {
        let mut ws = Workspace::new();
        ws.ensure_slot(0, 3);
        ws.slot_mut(0).fill(9.0);
        ws.clear();
        assert_eq!(ws.slot(0), &[0.0, 0.0, 0.0]);
        assert_eq!(ws.slot_len(0), 3);
    }
}
