//! End-to-end chaos determinism: the serving loop under injected worker
//! panics, stalls and arrival bursts.
//!
//! The contract extends the fault-free one: for a fixed request stream and a
//! fixed [`ChaosPlan`] seed, **replay** outcomes — responses, sheds,
//! degradations, retry/restart counters, virtual queue waits — are
//! byte-identical across worker counts and repeated runs, panics and all.
//! **Live** mode keeps conservation instead: every submitted request is
//! answered exactly once (no deadlock, no duplicate execution), whatever the
//! panic schedule does to the workers.

use ie_nn::dataset::SyntheticDataset;
use ie_nn::spec::tiny_multi_exit;
use ie_nn::train::BatchPlanPool;
use ie_nn::MultiExitNetwork;
use ie_runtime::{LatencyAdmission, StateDiscretizer};
use ie_serve::{
    ChaosPlan, OverloadConfig, Request, ServeConfig, ServeOutcome, Server, ShedPolicy, ShedReason,
    Verdict, WindowConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-exit latency cost table used by every test (seconds). Fixed rather
/// than calibrated so admission decisions are part of the fixture.
const COSTS: [f64; 2] = [0.002, 0.006];

fn network(seed: u64) -> MultiExitNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
}

fn admission() -> LatencyAdmission {
    LatencyAdmission::static_lut(COSTS.to_vec(), vec![0.6, 0.7], StateDiscretizer::paper_default())
        .unwrap()
}

/// A fixed open-loop schedule: bursts of 4 every 3 ms, budgets cycling from
/// "reject me" through "shallow exit" to "deepest exit".
fn request_stream(count: usize) -> Vec<Request> {
    let data = SyntheticDataset::generate(3, 8, count, 0.1, 33);
    let samples: Vec<_> = data.train().iter().chain(data.test()).cloned().collect();
    (0..count)
        .map(|i| Request {
            id: i as u64,
            arrival_s: (i / 4) as f64 * 0.003,
            budget_s: [0.0005, 0.003, 0.004, 0.008][i % 4],
            input: samples[i % samples.len()].image.clone(),
        })
        .collect()
}

fn replay(
    threads: usize,
    requests: &[Request],
    overload: OverloadConfig,
    chaos: &ChaosPlan,
) -> ServeOutcome {
    let net = network(5);
    let mut pool = BatchPlanPool::new();
    let config =
        ServeConfig { window: WindowConfig { max_batch: 4, deadline_s: 0.004 }, threads, overload };
    let mut server = Server::new(&net, config, &mut pool).unwrap();
    let outcome = server.replay_chaotic(&mut admission(), requests, chaos).unwrap();
    for plan in server.into_plans() {
        pool.put(plan);
    }
    outcome
}

/// The acceptance bar of the CI chaos matrix, as a test: a bounded-queue
/// degrade server under the standard chaos mix produces byte-identical
/// replay outcomes for 1 vs 4 workers and repeated runs — with at least one
/// injected worker panic actually recovered and at least one request
/// actually shed along the way.
#[test]
fn chaotic_replay_is_byte_identical_across_worker_counts() {
    let requests = request_stream(96);
    let overload =
        OverloadConfig { queue_cap: 3, policy: ShedPolicy::Degrade, ..OverloadConfig::default() };
    let chaos = ChaosPlan::seeded(7);
    let one = replay(1, &requests, overload, &chaos);
    let four = replay(4, &requests, overload, &chaos);
    let again = replay(4, &requests, overload, &chaos);
    assert_eq!(
        format!("{:?}", one.responses),
        format!("{:?}", four.responses),
        "1-thread and 4-thread chaotic responses must serialize identically"
    );
    assert_eq!(format!("{:?}", four.responses), format!("{:?}", again.responses));
    // Every deterministic report field matches too — including the chaos
    // counters, which are keyed on batch content, never worker identity.
    for (a, b) in [(&one, &four), (&four, &again)] {
        assert_eq!(a.report.submitted, b.report.submitted);
        assert_eq!(a.report.served, b.report.served);
        assert_eq!(a.report.rejected, b.report.rejected);
        assert_eq!(a.report.shed, b.report.shed);
        assert_eq!(a.report.degraded, b.report.degraded);
        assert_eq!(a.report.retried, b.report.retried);
        assert_eq!(a.report.restarted, b.report.restarted);
        assert_eq!(a.report.stalled, b.report.stalled);
        assert_eq!(a.report.deadline_met, b.report.deadline_met);
        assert_eq!(a.report.batches, b.report.batches);
        assert_eq!(a.report.per_exit, b.report.per_exit);
        assert_eq!(a.report.wait_p50_s.to_bits(), b.report.wait_p50_s.to_bits());
        assert_eq!(a.report.wait_p99_s.to_bits(), b.report.wait_p99_s.to_bits());
    }
    // The run is only a chaos test if chaos actually fired.
    assert!(one.report.restarted >= 1, "no worker panic was injected at seed 7");
    assert!(one.report.retried >= 1, "no lost batch was retried");
    assert!(one.report.shed >= 1, "the bounded queue never shed at 4x burst pressure");
    assert!(one.report.degraded >= 1, "queue pressure never degraded an exit");
    assert!(one.report.conservation_holds(), "chaos broke request conservation");
    // Recovery is complete: the retried batches were served, not lost.
    assert!(!one
        .responses
        .iter()
        .any(|r| matches!(r.verdict, Verdict::Shed { reason: ShedReason::RetryExhausted })));
}

/// A panic schedule that keeps killing the same batches drives them into
/// retry exhaustion: their members are shed (exactly once each) instead of
/// looping forever or vanishing.
#[test]
fn exhausted_retry_budget_sheds_deterministically() {
    let requests = request_stream(32);
    let chaos =
        ChaosPlan { panic_probability: 1.0, panic_every_attempt: true, ..ChaosPlan::seeded(3) };
    let one = replay(1, &requests, OverloadConfig::default(), &chaos);
    let four = replay(4, &requests, OverloadConfig::default(), &chaos);
    assert_eq!(format!("{:?}", one.responses), format!("{:?}", four.responses));
    assert_eq!(one.report.served, 0, "every batch's workers were killed on every attempt");
    assert!(one.report.conservation_holds());
    // Each batch burns attempt 0 plus `retry_budget` retries before shedding.
    assert_eq!(one.report.restarted, one.report.batches * 2);
    for r in &one.responses {
        assert!(
            matches!(
                r.verdict,
                Verdict::Rejected | Verdict::Shed { reason: ShedReason::RetryExhausted }
            ),
            "request {} escaped a total panic schedule: {:?}",
            r.id,
            r.verdict
        );
    }
}

/// Regression (live mode): a worker panicking mid-batch neither deadlocks
/// the condvar queue nor double-executes the re-enqueued batch. Every
/// admitted request is answered exactly once; ids stay unique.
#[test]
fn live_worker_panic_recovers_without_deadlock_or_duplicates() {
    let net = network(5);
    let requests = request_stream(32);
    // Every first attempt panics; the retry (attempt 1) succeeds.
    let chaos = ChaosPlan { panic_probability: 1.0, ..ChaosPlan::seeded(9) };
    let mut pool = BatchPlanPool::new();
    let config = ServeConfig::new(WindowConfig { max_batch: 4, deadline_s: 0.001 }, 2);
    let mut server = Server::new(&net, config, &mut pool).unwrap();
    let mut adm = admission();
    let outcome = server
        .run_live_chaotic(&mut adm, &chaos, |handle| {
            for r in &requests {
                handle.submit(r.id, r.budget_s, r.input.clone()).expect("live submit");
            }
        })
        .unwrap();
    for plan in server.into_plans() {
        pool.put(plan);
    }
    let r = &outcome.report;
    assert_eq!(outcome.responses.len(), requests.len(), "every submission answered");
    let mut ids: Vec<u64> = outcome.responses.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), requests.len(), "a re-enqueued batch was answered twice");
    assert!(r.conservation_holds(), "live chaos broke request conservation");
    assert!(r.restarted >= 1, "no worker was lost under a p=1 panic schedule");
    assert!(r.retried >= 1, "no lost batch was re-enqueued");
    // The retry budget was never exhausted: each batch's second attempt ran.
    assert!(!outcome
        .responses
        .iter()
        .any(|x| matches!(x.verdict, Verdict::Shed { reason: ShedReason::RetryExhausted })));
    assert_eq!(r.served + r.rejected, requests.len());
}

/// Live retry exhaustion still terminates and conserves: when every attempt
/// of every batch panics, all admitted requests come back shed, none hang.
#[test]
fn live_retry_exhaustion_terminates_and_conserves() {
    let net = network(5);
    let requests = request_stream(16);
    let chaos =
        ChaosPlan { panic_probability: 1.0, panic_every_attempt: true, ..ChaosPlan::seeded(13) };
    let mut pool = BatchPlanPool::new();
    let config = ServeConfig::new(WindowConfig { max_batch: 4, deadline_s: 0.001 }, 2);
    let mut server = Server::new(&net, config, &mut pool).unwrap();
    let mut adm = admission();
    let outcome = server
        .run_live_chaotic(&mut adm, &chaos, |handle| {
            for r in &requests {
                handle.submit(r.id, r.budget_s, r.input.clone()).expect("live submit");
            }
        })
        .unwrap();
    for plan in server.into_plans() {
        pool.put(plan);
    }
    assert_eq!(outcome.responses.len(), requests.len());
    assert!(outcome.report.conservation_holds());
    assert_eq!(outcome.report.served, 0);
    for resp in &outcome.responses {
        assert!(matches!(
            resp.verdict,
            Verdict::Rejected | Verdict::Shed { reason: ShedReason::RetryExhausted }
        ));
    }
}
