//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this workspace vendors
//! the small slice of the `rand` API its crates actually use: `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng`. The generator is a deterministic xoshiro256++ seeded via
//! SplitMix64, so every seed reproduces the same stream on every platform —
//! exactly the reproducibility contract the simulation tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    fn sample<D, T>(&mut self, distribution: D) -> T
    where
        D: Distribution<T>,
    {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can be sampled with an RNG.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
///
/// Floats are uniform in `[0, 1)`; integers are uniform over the full domain.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style unbiased-enough bounded sampling: 128-bit multiply keeps the
// modulo bias below 2^-64, far beneath anything the simulations can observe.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded through SplitMix64.
    ///
    /// Not the actual `StdRng` cipher, but the same trait surface and the same
    /// determinism guarantee: one seed, one stream, on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(1u8..=8);
            assert!((1..=8).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99, "stream should span [0, 1): {min} {max}");
    }
}
