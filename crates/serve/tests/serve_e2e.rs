//! End-to-end determinism of the serving loop, plus the batching-window
//! partition property.
//!
//! The contract: for a fixed seed and a fixed request arrival schedule, the
//! server's responses are **byte-identical** across worker counts (1 vs 4),
//! across repeated runs, and between the f32 and replayed streams — batching
//! and threading are throughput knobs, never semantic ones. Live mode keeps
//! the same response *content* (timing is wall-clock).

use ie_nn::dataset::SyntheticDataset;
use ie_nn::spec::tiny_multi_exit;
use ie_nn::train::{BatchPlanPool, QuantPlanPool};
use ie_nn::MultiExitNetwork;
use ie_runtime::{LatencyAdmission, StateDiscretizer};
use ie_serve::{Request, Response, ServeConfig, ServeOutcome, Server, Verdict, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-exit latency cost table used by every test (seconds). Fixed rather
/// than calibrated so admission decisions are part of the fixture.
const COSTS: [f64; 2] = [0.002, 0.006];

fn network(seed: u64) -> MultiExitNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
}

fn admission() -> LatencyAdmission {
    LatencyAdmission::static_lut(COSTS.to_vec(), vec![0.6, 0.7], StateDiscretizer::paper_default())
        .unwrap()
}

/// A fixed open-loop schedule: bursty arrivals, budgets cycling from "shed
/// me" through "shallow exit" to "deepest exit".
fn request_stream(count: usize) -> Vec<Request> {
    let data = SyntheticDataset::generate(3, 8, count, 0.1, 33);
    let samples: Vec<_> = data.train().iter().chain(data.test()).cloned().collect();
    (0..count)
        .map(|i| Request {
            id: i as u64,
            // Bursts of 4 at the same instant, 3 ms apart.
            arrival_s: (i / 4) as f64 * 0.003,
            budget_s: [0.0005, 0.003, 0.004, 0.008][i % 4],
            input: samples[i % samples.len()].image.clone(),
        })
        .collect()
}

fn replay_f32(threads: usize, requests: &[Request]) -> ServeOutcome {
    let net = network(5);
    let mut pool = BatchPlanPool::new();
    let config = ServeConfig::new(WindowConfig { max_batch: 4, deadline_s: 0.004 }, threads);
    let mut server = Server::new(&net, config, &mut pool).unwrap();
    let outcome = server.replay(&mut admission(), requests).unwrap();
    for plan in server.into_plans() {
        pool.put(plan);
    }
    outcome
}

#[test]
fn replay_responses_are_byte_identical_across_thread_counts_and_runs() {
    let requests = request_stream(64);
    let one = replay_f32(1, &requests);
    let four = replay_f32(4, &requests);
    let again = replay_f32(4, &requests);
    // Byte-identical: compare the full Debug serialization, not just Eq.
    assert_eq!(
        format!("{:?}", one.responses),
        format!("{:?}", four.responses),
        "1-thread and 4-thread responses must serialize identically"
    );
    assert_eq!(format!("{:?}", four.responses), format!("{:?}", again.responses));
    // The deterministic half of the report matches too: same batches, same
    // virtual queue waits.
    for (a, b) in [(&one, &four), (&four, &again)] {
        assert_eq!(a.report.served, b.report.served);
        assert_eq!(a.report.rejected, b.report.rejected);
        assert_eq!(a.report.batches, b.report.batches);
        assert_eq!(a.report.wait_p50_s.to_bits(), b.report.wait_p50_s.to_bits());
        assert_eq!(a.report.wait_p99_s.to_bits(), b.report.wait_p99_s.to_bits());
    }
    // The budget ladder exercises all three verdicts.
    let mut shed = 0;
    let mut shallow = 0;
    let mut deep = 0;
    for r in &one.responses {
        match r.verdict {
            Verdict::Rejected | Verdict::Shed { .. } => shed += 1,
            Verdict::Served { exit: 0, .. } => shallow += 1,
            Verdict::Served { .. } => deep += 1,
        }
    }
    assert!(shed > 0 && shallow > 0 && deep > 0, "{shed} shed, {shallow} shallow, {deep} deep");
    assert_eq!(one.report.rejected, shed);
    // Every queue wait respects the window deadline (virtual clock).
    assert!(one.report.wait_p99_s <= 0.004 + 1e-12);
}

#[test]
fn quantized_replay_is_deterministic_and_serves_the_same_decisions() {
    use ie_nn::quant::config_from_bits;
    use ie_tensor::QuantParams;

    let net = network(5);
    let n = net.architecture().compressible_layers().len();
    let first = QuantParams::from_range(-3.0, 3.0, 8);
    let act = QuantParams::from_range(0.0, 8.0, 8);
    let cfg = config_from_bits(
        &net,
        &(0..n).map(|i| Some((8, if i == 0 { first } else { act }))).collect::<Vec<_>>(),
    )
    .unwrap();
    let requests = request_stream(32);
    let run = |threads: usize| {
        let mut pool = QuantPlanPool::new();
        let config = ServeConfig::new(WindowConfig { max_batch: 4, deadline_s: 0.004 }, threads);
        let mut server = Server::new_quantized(&net, &cfg, config, &mut pool).unwrap();
        let outcome = server.replay(&mut admission(), &requests).unwrap();
        for plan in server.into_plans() {
            pool.put(plan);
        }
        outcome
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(format!("{:?}", one.responses), format!("{:?}", four.responses));
    // Admission is engine-independent: the quantized server makes the same
    // admit/shed/exit decisions as the f32 server for the same stream.
    let f32_resp = replay_f32(1, &requests).responses;
    let decision = |r: &Response| match r.verdict {
        Verdict::Rejected | Verdict::Shed { .. } => None,
        Verdict::Served { exit, .. } => Some(exit),
    };
    assert_eq!(
        one.responses.iter().map(decision).collect::<Vec<_>>(),
        f32_resp.iter().map(decision).collect::<Vec<_>>()
    );
}

#[test]
fn live_mode_content_matches_replay_across_thread_counts() {
    let net = network(5);
    let requests = request_stream(32);
    let run_live = |threads: usize| {
        let mut pool = BatchPlanPool::new();
        // A tiny live deadline keeps the test fast; content must not
        // depend on it.
        let config = ServeConfig::new(WindowConfig { max_batch: 4, deadline_s: 0.001 }, threads);
        let mut server = Server::new(&net, config, &mut pool).unwrap();
        let mut adm = admission();
        let outcome = server
            .run_live(&mut adm, |handle| {
                for r in &requests {
                    handle.submit(r.id, r.budget_s, r.input.clone()).expect("live submit");
                }
            })
            .unwrap();
        for plan in server.into_plans() {
            pool.put(plan);
        }
        outcome
    };
    let live_one = run_live(1);
    let live_four = run_live(4);
    let replayed = replay_f32(1, &requests);
    assert_eq!(live_one.responses.len(), requests.len());
    // Live responses come back sorted by id; content matches the replay of
    // the same submission order exactly, for any worker count.
    assert_eq!(format!("{:?}", live_one.responses), format!("{:?}", live_four.responses));
    assert_eq!(format!("{:?}", live_one.responses), format!("{:?}", replayed.responses));
    assert_eq!(
        live_four.report.served + live_four.report.rejected,
        requests.len(),
        "no request dropped or duplicated by the live queue"
    );
}

#[test]
fn mismatched_admission_tables_are_rejected() {
    let net = network(5); // 2 exits
    let mut pool = BatchPlanPool::new();
    let config = ServeConfig::new(WindowConfig { max_batch: 2, deadline_s: 0.001 }, 1);
    let mut server = Server::new(&net, config, &mut pool).unwrap();
    let mut three_exit_adm = LatencyAdmission::static_lut(
        vec![0.001, 0.002, 0.003],
        vec![0.5, 0.6, 0.7],
        StateDiscretizer::paper_default(),
    )
    .unwrap();
    assert!(matches!(
        server.replay(&mut three_exit_adm, &[]),
        Err(ie_serve::ServeError::InvalidConfig(_))
    ));
}
