//! `ie-tensor` — dense `f32` tensor substrate used by the neural-network,
//! compression and reinforcement-learning crates of the intermittent
//! multi-exit inference reproduction.
//!
//! The crate intentionally stays small: row-major dense tensors with up to
//! four dimensions (`[N, C, H, W]` for activations, `[O, I, Kh, Kw]` for
//! convolution filters), the handful of element-wise and linear-algebra
//! operations a LeNet-class network needs, and the `im2col` lowering used by
//! the convolution layers.
//!
//! # Example
//!
//! ```
//! use ie_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), ie_tensor::TensorError>(())
//! ```

// Unsafe code is denied crate-wide and allowed back in exactly four places:
// the explicit-intrinsics ISA tier modules `linalg::x86`, `ops::x86`,
// `backward::x86` and `quant::simd`, each of which documents its safety
// contract (the dispatcher proves the required CPU features before calling
// in).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod backward;
pub mod dispatch;
mod error;
mod im2col;
mod linalg;
mod ops;
pub mod quant;
mod shape;
mod tensor;
mod workspace;

pub use backward::{
    accumulate_slice_into, cross_entropy_grad_into, max_pool_backward_into, outer_accumulate_into,
    relu_backward_into, transpose_into,
};
pub use dispatch::IsaTier;
pub use error::TensorError;
pub use im2col::{
    col2im, col2im_into, im2col, im2col_batch_into, im2col_into, im2col_quant_batch_i16_into,
    im2col_quant_batch_into, im2col_quant_select_batch_into, Conv2dGeometry,
};
pub use linalg::{gemm_into, gemm_sparse_into, matvec_batch_into, matvec_into, matvec_t_into};
pub use ops::{
    add_bias_rows, add_bias_samples, max_pool_planes_i8_into, max_pool_planes_into,
    relu_codes_floor, relu_slice, softmax_slice_into,
};
pub use quant::{
    dequant_acc, dequant_rows_slice_into, dequant_slice_into, gemm_i16_into, gemm_i16t_into,
    gemm_i8_into, matvec_i16_batch_into, matvec_i16_into, matvec_i8_batch_into, matvec_i8_into,
    requant_rows_slice_into, requant_slice_into, transpose_widen_into, weight_code, QuantParams,
    MADD_DEPTH_ALIGN,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;

/// Explicit-tier entry points of every dispatched kernel (each clamps the
/// requested [`IsaTier`] to what the hardware supports). The unsuffixed
/// kernels at the crate root select the active tier automatically; these
/// exist for the tier-equivalence property tests and the per-kernel
/// benchmarks, which need two tiers side by side in one process.
pub mod tiered {
    pub use crate::backward::{
        accumulate_slice_into_tier as accumulate_slice_into,
        cross_entropy_grad_into_tier as cross_entropy_grad_into,
        max_pool_backward_into_tier as max_pool_backward_into,
        outer_accumulate_into_tier as outer_accumulate_into,
        relu_backward_into_tier as relu_backward_into, transpose_into_tier as transpose_into,
    };
    pub use crate::linalg::{
        gemm_into_tier as gemm_into, gemm_sparse_into_tier as gemm_sparse_into,
        matvec_batch_into_tier as matvec_batch_into, matvec_into_tier as matvec_into,
        matvec_t_into_tier as matvec_t_into,
    };
    pub use crate::ops::{
        add_bias_rows_tier as add_bias_rows, add_bias_samples_tier as add_bias_samples,
        max_pool_planes_i8_into_tier as max_pool_planes_i8_into,
        max_pool_planes_into_tier as max_pool_planes_into,
        relu_codes_floor_tier as relu_codes_floor, relu_slice_tier as relu_slice,
        softmax_slice_into_tier as softmax_slice_into,
    };
    pub use crate::quant::{
        dequant_rows_slice_into_tier as dequant_rows_slice_into,
        dequant_slice_into_tier as dequant_slice_into, gemm_i16t_into_tier as gemm_i16t_into,
        requant_rows_slice_into_tier as requant_rows_slice_into,
        requant_slice_into_tier as requant_slice_into,
    };
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
