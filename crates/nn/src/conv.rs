use crate::{NnError, Result};
use ie_tensor::{
    col2im, gemm_into, gemm_sparse_into, im2col, im2col_batch_into, im2col_into, Conv2dGeometry,
    Tensor,
};
use rand::Rng;

/// A 2-D convolution layer over `[C, H, W]` inputs.
///
/// Filters are stored as `[out_channels, in_channels, k, k]`. The forward
/// pass lowers the input with `im2col` and performs a single matrix product,
/// which is also how the MCU deployment in the paper executes convolutions.
///
/// # Example
///
/// ```
/// use ie_nn::Conv2d;
/// use ie_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let conv = Conv2d::new(&mut rng, 3, 8, 3, 1, 1, 16, 16);
/// let x = Tensor::zeros(&[3, 16, 16]);
/// let y = conv.forward(&x)?;
/// assert_eq!(y.dims(), &[8, 16, 16]);
/// # Ok::<(), ie_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    geom: Conv2dGeometry,
    out_channels: usize,
    sparse_hint: bool,
}

impl Conv2d {
    /// Creates a convolution layer with Xavier-uniform initialised filters.
    ///
    /// `in_h`/`in_w` fix the expected input spatial size; the paper's MCU
    /// deployment is fully static, so carrying the geometry in the layer keeps
    /// FLOPs accounting exact.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let geom = Conv2dGeometry { in_channels, in_h, in_w, kernel, stride, padding };
        Conv2d {
            weight: Tensor::uniform(rng, &[out_channels, in_channels, kernel, kernel], limit),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            geom,
            out_channels,
            sparse_hint: false,
        }
    }

    /// Marks the layer's weights as sparse (set by the compression crate after
    /// channel pruning). With the hint set, forward passes use the
    /// sparsity-aware GEMM that skips zeroed weights; without it they use the
    /// dense blocked kernel. Both kernels agree on all finite inputs.
    pub fn set_sparse_hint(&mut self, sparse: bool) {
        self.sparse_hint = sparse;
    }

    /// Whether the pruned-weight (sparsity-aware) GEMM is selected.
    pub fn sparse_hint(&self) -> bool {
        self.sparse_hint
    }

    /// The convolution geometry (input size, kernel, stride, padding).
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.geom.in_channels
    }

    /// Filter tensor, shaped `[out_channels, in_channels, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable access to the filters (used by pruning / quantization).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Bias vector, one entry per output channel.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Output shape `[out_channels, out_h, out_w]`.
    pub fn output_dims(&self) -> [usize; 3] {
        [self.out_channels, self.geom.out_h(), self.geom.out_w()]
    }

    /// Number of elements of the flat input this layer expects.
    pub fn input_len(&self) -> usize {
        self.geom.in_channels * self.geom.in_h * self.geom.in_w
    }

    /// Number of elements of the flat output this layer produces.
    pub fn output_len(&self) -> usize {
        self.out_channels * self.geom.out_h() * self.geom.out_w()
    }

    /// Number of elements the `im2col` scratch buffer needs.
    pub fn col_len(&self) -> usize {
        self.geom.col_len()
    }

    /// Allocation-free forward pass: lowers `input` into `col`, multiplies by
    /// the filter matrix with the bias add (and, when `fuse_relu` is set, the
    /// ReLU of a following activation layer) fused into the GEMM epilogue, and
    /// writes the `[out_channels, out_h, out_w]` activation into `out`.
    ///
    /// The filters are read in their native `[O, C·K·K]` row-major layout, so
    /// no weight reshape/copy happens. Buffer sizes must be exactly
    /// [`Self::input_len`], [`Self::output_len`] and [`Self::col_len`].
    /// Bit-identical to [`Self::forward`] (+ separate ReLU when fused).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when a buffer length does not
    /// match the layer geometry.
    pub fn forward_into(
        &self,
        input: &[f32],
        out: &mut [f32],
        col: &mut [f32],
        fuse_relu: bool,
    ) -> Result<()> {
        if input.len() != self.input_len() {
            return Err(NnError::InputShapeMismatch {
                layer: "conv2d".into(),
                expected: vec![self.geom.in_channels, self.geom.in_h, self.geom.in_w],
                actual: vec![input.len()],
            });
        }
        if out.len() != self.output_len() {
            return Err(NnError::InputShapeMismatch {
                layer: "conv2d(out)".into(),
                expected: vec![self.output_len()],
                actual: vec![out.len()],
            });
        }
        im2col_into(input, &self.geom, col)?;
        let (m, k, n) = (self.out_channels, self.geom.col_rows(), self.geom.col_cols());
        if self.sparse_hint {
            gemm_sparse_into(self.weight.as_slice(), col, out, m, k, n);
        } else {
            gemm_into(self.weight.as_slice(), col, out, m, k, n);
        }
        let plane = self.geom.out_h() * self.geom.out_w();
        ie_tensor::add_bias_rows(out, plane, self.bias.as_slice(), fuse_relu);
        Ok(())
    }

    /// Batched counterpart of [`Self::forward_into`]: runs `batch` samples
    /// through one widened GEMM. Input and output use the channel-major wide
    /// layout `[C, batch, H, W]` (see [`ie_tensor::im2col_batch_into`]); the
    /// column scratch must hold `batch · col_len` elements. The batched
    /// `im2col` lowers all samples into one `[C·K·K, batch·out_h·out_w]`
    /// activation matrix, a single GEMM multiplies it against the filters,
    /// and the bias (+ fused ReLU) epilogue sweeps each output-channel row
    /// once. Per sample the results are bit-identical to
    /// [`Self::forward_into`]: the GEMM accumulates every output element in
    /// ascending depth order regardless of the matrix width.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when a buffer length does not
    /// match `batch` copies of the layer geometry.
    pub fn forward_batch_into(
        &self,
        input: &[f32],
        out: &mut [f32],
        col: &mut [f32],
        batch: usize,
        fuse_relu: bool,
    ) -> Result<()> {
        if input.len() != self.input_len() * batch {
            return Err(NnError::InputShapeMismatch {
                layer: "conv2d(batch)".into(),
                expected: vec![batch, self.geom.in_channels, self.geom.in_h, self.geom.in_w],
                actual: vec![input.len()],
            });
        }
        if out.len() != self.output_len() * batch {
            return Err(NnError::InputShapeMismatch {
                layer: "conv2d(batch out)".into(),
                expected: vec![self.output_len() * batch],
                actual: vec![out.len()],
            });
        }
        im2col_batch_into(input, batch, &self.geom, col)?;
        let (m, k, n) = (self.out_channels, self.geom.col_rows(), batch * self.geom.col_cols());
        if self.sparse_hint {
            gemm_sparse_into(self.weight.as_slice(), col, out, m, k, n);
        } else {
            gemm_into(self.weight.as_slice(), col, out, m, k, n);
        }
        let plane = batch * self.geom.out_h() * self.geom.out_w();
        ie_tensor::add_bias_rows(out, plane, self.bias.as_slice(), fuse_relu);
        Ok(())
    }

    /// Forward pass over a `[in_channels, in_h, in_w]` input.
    ///
    /// Allocating wrapper over [`Self::forward_into`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when the input shape does not
    /// match the layer geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let expected = [self.geom.in_channels, self.geom.in_h, self.geom.in_w];
        if input.dims() != expected {
            return Err(NnError::InputShapeMismatch {
                layer: "conv2d".into(),
                expected: expected.to_vec(),
                actual: input.dims().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&self.output_dims());
        let mut col = vec![0.0f32; self.col_len()];
        self.forward_into(input.as_slice(), out.as_mut_slice(), &mut col, false)?;
        Ok(out)
    }

    /// Backward pass: accumulates filter/bias gradients and returns the
    /// gradient with respect to the input image.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `input` or `grad_output` have unexpected
    /// sizes.
    pub fn backward(&mut self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        let (oh, ow) = (self.geom.out_h(), self.geom.out_w());
        let expected_out = [self.out_channels, oh, ow];
        if grad_output.dims() != expected_out {
            return Err(NnError::InputShapeMismatch {
                layer: "conv2d(backward)".into(),
                expected: expected_out.to_vec(),
                actual: grad_output.dims().to_vec(),
            });
        }
        let k = self.geom.kernel;
        let cols = im2col(input, &self.geom)?;
        let go_mat = grad_output.reshape(&[self.out_channels, oh * ow])?;
        // dW = grad_output · colsᵀ
        let cols_t = cols.transpose()?;
        let dw = go_mat.matmul(&cols_t)?;
        let dw = dw.reshape(&[self.out_channels, self.geom.in_channels, k, k])?;
        self.grad_weight.add_scaled_inplace(&dw, 1.0)?;
        // dbias = row sums of grad_output
        for c in 0..self.out_channels {
            let s: f32 = go_mat.as_slice()[c * oh * ow..(c + 1) * oh * ow].iter().sum();
            self.grad_bias.as_mut_slice()[c] += s;
        }
        // dcols = Wᵀ · grad_output, then scatter back to image layout.
        let wmat = self.weight.reshape(&[self.out_channels, self.geom.in_channels * k * k])?;
        let wt = wmat.transpose()?;
        let dcols = wt.matmul(&go_mat)?;
        let dx = col2im(&dcols, &self.geom)?;
        Ok(dx)
    }

    /// Allocation-free backward pass used by the training plans. `col` holds
    /// the layer input already lowered by `im2col` — the plan caches it from
    /// the forward half of the same step, so the backward half never lowers
    /// the input a second time. Computes `dW = grad_out · colᵀ` straight into
    /// `grad_w` (the caller's zeroed store region), row-sums `grad_out` into
    /// `grad_b`, then — when `dx` is present — forms `dcols = Wᵀ · grad_out`
    /// (weight transposed into `wt`, GEMM into `colt`, whose contents are
    /// dead after the `dW` product) and scatters it back to image layout.
    /// `dx: None` skips the input-gradient products entirely; the plan passes
    /// it for the network's first layer, whose input gradient nobody reads.
    ///
    /// `weight` is passed explicitly — normally [`Self::weight`], but the
    /// fake-quant training mode substitutes the quantize–dequantize round
    /// trip for the dx product (straight-through estimator). With
    /// `weight == self.weight` and `col == im2col(input)`, every step
    /// matches [`Self::backward`] bit for bit: writing the `dW` GEMM into a
    /// zeroed region equals the legacy accumulate (`0 + x == x` — the GEMM's
    /// ascending-depth sums never produce `-0.0`), and the `dcols` product
    /// runs the same transpose-then-GEMM sequence as the legacy path.
    ///
    /// Scratch lengths: `col`/`colt` hold [`Self::col_len`] elements, `wt`
    /// holds `weight.len()`. Enforced by the underlying kernels (panics on
    /// mismatch — the plan pre-sizes everything).
    ///
    /// # Errors
    ///
    /// Returns a tensor error when the col2im buffer lengths do not match
    /// the geometry.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backward_slice_into(
        &self,
        weight: &[f32],
        col: &[f32],
        grad_out: &[f32],
        dx: Option<&mut [f32]>,
        grad_w: &mut [f32],
        grad_b: &mut [f32],
        colt: &mut [f32],
        wt: &mut [f32],
    ) -> Result<()> {
        let (m, ckk, ohw) =
            (self.out_channels, self.geom.col_rows(), self.geom.out_h() * self.geom.out_w());
        ie_tensor::transpose_into(col, ckk, ohw, colt);
        ie_tensor::gemm_into(grad_out, colt, grad_w, m, ohw, ckk);
        for c in 0..m {
            let s: f32 = grad_out[c * ohw..(c + 1) * ohw].iter().sum();
            grad_b[c] += s;
        }
        if let Some(dx) = dx {
            ie_tensor::transpose_into(weight, m, ckk, wt);
            ie_tensor::gemm_into(wt, grad_out, colt, ckk, m, ohw);
            ie_tensor::col2im_into(colt, &self.geom, dx)?;
        }
        Ok(())
    }

    /// Forward pass with an explicit filter tensor (flattened `[O, C·K·K]`,
    /// same length as [`Self::weight`]) — the fake-quant training path
    /// substitutes the dequantised weight codes here while the bias stays
    /// full precision. With `weight == self.weight.as_slice()` this is
    /// bit-identical to [`Self::forward_into`] without ReLU fusion.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] via `im2col` when `input` or
    /// `col` does not match the layer geometry.
    pub(crate) fn forward_with_weight_into(
        &self,
        weight: &[f32],
        input: &[f32],
        out: &mut [f32],
        col: &mut [f32],
    ) -> Result<()> {
        debug_assert_eq!(weight.len(), self.weight.len());
        debug_assert_eq!(out.len(), self.output_len());
        im2col_into(input, &self.geom, col)?;
        let (m, k, n) = (self.out_channels, self.geom.col_rows(), self.geom.col_cols());
        if self.sparse_hint {
            gemm_sparse_into(weight, col, out, m, k, n);
        } else {
            gemm_into(weight, col, out, m, k, n);
        }
        let plane = self.geom.out_h() * self.geom.out_w();
        ie_tensor::add_bias_rows(out, plane, self.bias.as_slice(), false);
        Ok(())
    }

    pub(crate) fn grad_weight_mut(&mut self) -> &mut Tensor {
        &mut self.grad_weight
    }

    pub(crate) fn grad_bias_mut(&mut self) -> &mut Tensor {
        &mut self.grad_bias
    }

    /// Accumulated filter gradient.
    pub fn grad_weight(&self) -> &Tensor {
        &self.grad_weight
    }

    /// Accumulated bias gradient.
    pub fn grad_bias(&self) -> &Tensor {
        &self.grad_bias
    }

    /// Applies one SGD step with the given learning rate and clears gradients.
    pub fn apply_gradients(&mut self, lr: f32) {
        for (w, g) in self.weight.as_mut_slice().iter_mut().zip(self.grad_weight.as_slice()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.as_mut_slice().iter_mut().zip(self.grad_bias.as_slice()) {
            *b -= lr * g;
        }
        self.zero_grad();
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 and zero bias is the identity on a single channel.
        let mut conv = Conv2d::new(&mut rng(), 1, 1, 1, 1, 0, 3, 3);
        conv.weight_mut().as_mut_slice()[0] = 1.0;
        conv.bias_mut().as_mut_slice()[0] = 0.0;
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        // Sum-pooling kernel (all ones) over a 3x3 input with no padding gives
        // the total sum as the single output value.
        let mut conv = Conv2d::new(&mut rng(), 1, 1, 3, 1, 0, 3, 3);
        for w in conv.weight_mut().as_mut_slice() {
            *w = 1.0;
        }
        conv.bias_mut().as_mut_slice()[0] = 0.5;
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1]);
        assert_eq!(y.as_slice()[0], 45.5);
    }

    #[test]
    fn output_shape_honours_stride_and_padding() {
        let conv = Conv2d::new(&mut rng(), 3, 6, 5, 2, 2, 32, 32);
        assert_eq!(conv.output_dims(), [6, 16, 16]);
        let y = conv.forward(&Tensor::zeros(&[3, 32, 32])).unwrap();
        assert_eq!(y.dims(), &[6, 16, 16]);
    }

    #[test]
    fn forward_rejects_wrong_shape() {
        let conv = Conv2d::new(&mut rng(), 3, 6, 3, 1, 1, 8, 8);
        assert!(conv.forward(&Tensor::zeros(&[3, 9, 8])).is_err());
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(&mut r, 1, 2, 3, 1, 1, 4, 4);
        let x = Tensor::randn(&mut r, &[1, 4, 4], 0.0, 1.0);
        let y = conv.forward(&x).unwrap();
        let go = Tensor::ones(&[2, 4, 4]);
        conv.backward(&x, &go).unwrap();
        let analytic = conv.grad_weight().clone();
        let eps = 1e-2;
        // Spot-check a handful of filter entries.
        for idx in [0usize, 3, 7, 10, 17] {
            let mut up = conv.clone();
            up.weight_mut().as_mut_slice()[idx] += eps;
            let lu = up.forward(&x).unwrap().sum();
            let mut down = conv.clone();
            down.weight_mut().as_mut_slice()[idx] -= eps;
            let ld = down.forward(&x).unwrap().sum();
            let numeric = (lu - ld) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!((numeric - a).abs() < 2e-2, "dW[{idx}]: analytic {a} vs numeric {numeric}");
        }
        let _ = y;
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(&mut r, 1, 1, 3, 1, 0, 4, 4);
        let x = Tensor::randn(&mut r, &[1, 4, 4], 0.0, 1.0);
        let go = Tensor::ones(&[1, 2, 2]);
        let dx = conv.backward(&x, &go).unwrap();
        let eps = 1e-2;
        for idx in [0usize, 5, 10, 15] {
            let mut xu = x.clone();
            xu.as_mut_slice()[idx] += eps;
            let lu = conv.forward(&xu).unwrap().sum();
            let mut xd = x.clone();
            xd.as_mut_slice()[idx] -= eps;
            let ld = conv.forward(&xd).unwrap().sum();
            let numeric = (lu - ld) / (2.0 * eps);
            let a = dx.as_slice()[idx];
            assert!((numeric - a).abs() < 2e-2, "dx[{idx}]: analytic {a} vs numeric {numeric}");
        }
    }

    #[test]
    fn apply_gradients_clears_accumulators() {
        let mut r = rng();
        let mut conv = Conv2d::new(&mut r, 1, 1, 3, 1, 1, 4, 4);
        let x = Tensor::ones(&[1, 4, 4]);
        let go = Tensor::ones(&[1, 4, 4]);
        conv.backward(&x, &go).unwrap();
        assert!(conv.grad_weight().norm_sq() > 0.0);
        conv.apply_gradients(0.01);
        assert_eq!(conv.grad_weight().norm_sq(), 0.0);
    }
}
