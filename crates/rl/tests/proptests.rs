//! Property-based tests of the reinforcement-learning substrate.

use ie_rl::{EpsilonSchedule, QTable, ReplayBuffer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Q-values stay bounded by the reward bounds divided by (1 − γ): with all
    /// rewards in [0, r_max], no value can exceed r_max / (1 − γ).
    #[test]
    fn q_values_respect_the_discounted_bound(
        updates in proptest::collection::vec((0usize..4, 0usize..3, 0.0f64..1.0, proptest::option::of(0usize..4)), 1..300),
        alpha in 0.05f64..1.0,
        gamma in 0.0f64..0.95,
    ) {
        let mut q = QTable::new(4, 3, alpha, gamma);
        for (s, a, r, next) in updates {
            q.update(s, a, r, next);
        }
        let bound = 1.0 / (1.0 - gamma) + 1e-6;
        for s in 0..4 {
            for a in 0..3 {
                prop_assert!(q.value(s, a) >= -1e-9);
                prop_assert!(q.value(s, a) <= bound, "Q({s},{a}) = {} exceeds {bound}", q.value(s, a));
            }
        }
    }

    /// The greedy action always has the maximal Q-value of its state.
    #[test]
    fn greedy_action_is_argmax(
        updates in proptest::collection::vec((0usize..5, 0usize..4, -1.0f64..1.0), 1..200),
    ) {
        let mut q = QTable::new(5, 4, 0.5, 0.9);
        for (s, a, r) in updates {
            q.update(s, a, r, None);
        }
        for s in 0..5 {
            let greedy = q.select_greedy(s);
            let best = (0..4).map(|a| q.value(s, a)).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((q.value(s, greedy) - best).abs() < 1e-12);
        }
    }

    /// The epsilon schedule is monotone non-increasing (when start ≥ end) and
    /// always stays within [min(start,end), max(start,end)].
    #[test]
    fn epsilon_schedule_is_monotone(start in 0.0f64..1.0, end in 0.0f64..1.0, steps in 1u64..1000) {
        let schedule = EpsilonSchedule::new(start, end, steps);
        let lo = start.min(end);
        let hi = start.max(end);
        let mut previous = schedule.epsilon(0);
        for t in (0..steps * 2).step_by((steps as usize / 10).max(1)) {
            let eps = schedule.epsilon(t);
            prop_assert!(eps >= lo - 1e-12 && eps <= hi + 1e-12);
            if start >= end {
                prop_assert!(eps <= previous + 1e-12);
            } else {
                prop_assert!(eps >= previous - 1e-12);
            }
            previous = eps;
        }
    }

    /// The replay buffer never exceeds its capacity and always keeps the most
    /// recent items.
    #[test]
    fn replay_buffer_keeps_the_newest(capacity in 1usize..32, items in proptest::collection::vec(0u32..1000, 1..200)) {
        let mut buffer = ReplayBuffer::new(capacity);
        for &item in &items {
            buffer.push(item);
        }
        prop_assert!(buffer.len() <= capacity);
        let expected: Vec<u32> = items.iter().rev().take(capacity).rev().copied().collect();
        let stored: Vec<u32> = buffer.iter().copied().collect();
        prop_assert_eq!(stored, expected);
    }
}
