//! `ie-serve` — the open-loop serving layer over the multi-exit inference
//! engine.
//!
//! The paper's deployment answers one event at a time on a harvesting
//! device; this crate answers a *stream* of requests on a server, reusing
//! the same machinery end to end:
//!
//! * worker threads each own a warmed [`ie_nn::BatchPlan`] (f32 or
//!   quantized), taken from the caller's plan pool — the handoff that keeps
//!   serving allocation-free after startup;
//! * a **dynamic batching window** ([`WindowConfig`], [`compose_batches`])
//!   closes each batch at size `N` or deadline `T`, whichever comes first;
//! * the runtime exit policies act as **admission control**
//!   ([`ie_runtime::LatencyAdmission`]): per request, the deepest exit whose
//!   predicted latency fits the request's budget — or load shedding when
//!   none does — exactly the paper's energy rule with latency as the
//!   resource;
//! * responses carry only deterministic content, so a fixed request stream
//!   produces **byte-identical responses** for any worker count, batch
//!   composition and repeated run (see [`Server::replay`]);
//! * an **overload layer** ([`OverloadConfig`]) bounds the queue and sheds
//!   or *degrades* under pressure — the multi-exit network doubling as the
//!   load-shedding actuator — while **worker supervision** catches panics,
//!   recycles plans and re-enqueues lost batches under a retry budget;
//! * a seeded [`ChaosPlan`] injects panics, stalls and arrival bursts to
//!   prove it, with byte-identical replay outcomes per seed.
//!
//! [`Server::replay`] serves a recorded stream on a virtual clock (tests,
//! benches); [`Server::run_live`] runs real worker threads against the wall
//! clock behind a [`LiveHandle`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod error;
mod overload;
mod report;
mod request;
mod server;
mod window;

pub use chaos::{silence_chaos_panics, ChaosPanic, ChaosPlan};
pub use error::ServeError;
pub use overload::{
    plan_overload, pressure_exit_cap, AdmitOutcome, OverloadConfig, OverloadPlan, PlannedBatch,
    ShedPolicy, ShedReason,
};
pub use report::{percentile, ServeReport};
pub use request::{Request, Response, Verdict};
pub use server::{serve_threads, LiveHandle, ServeConfig, ServeOutcome, Server};
pub use window::{compose_batches, WindowBatch, WindowConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
