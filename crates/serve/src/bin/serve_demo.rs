//! Demo of the open-loop serving path: builds a deterministic static-LUT
//! admission table, replays a synthetic request stream through the dynamic
//! batching window — optionally under a bounded queue, a shed policy and a
//! chaos schedule — and prints the report. Per-exit latencies are also
//! measured and printed for context, but admission uses a **fixed** cost
//! table so the replay outcome (responses, sheds, counters) is byte-identical
//! across machines, thread counts and repeated runs.
//!
//! Knobs (all environment variables):
//! * `IE_SERVE_THREADS` — worker threads (default: machine parallelism, ≤4)
//! * `IE_SERVE_WINDOW` — max requests per batch (default 8)
//! * `IE_SERVE_DEADLINE_MS` — window deadline in milliseconds (default 2)
//! * `IE_SERVE_REQUESTS` — number of requests to replay (default 512)
//! * `IE_SERVE_QUEUE_CAP` — bounded queue capacity (default 0 = unbounded)
//! * `IE_SERVE_SHED` — shed policy: `reject` | `drop-oldest` | `degrade`
//! * `IE_CHAOS_SEED` — chaos schedule seed (default 0 = no chaos)
//!
//! `--out <path>` writes the deterministic slice of the run (counters,
//! virtual-clock percentiles, a response digest) as JSON — the CI chaos
//! matrix diffs these files across worker counts per seed.

use ie_nn::dataset::SyntheticDataset;
use ie_nn::spec::tiny_multi_exit;
use ie_nn::train::BatchPlanPool;
use ie_nn::MultiExitNetwork;
use ie_runtime::{LatencyAdmission, StateDiscretizer};
use ie_serve::{
    serve_threads, ChaosPlan, OverloadConfig, Request, Response, ServeConfig, Server, Verdict,
    WindowConfig,
};
use std::time::Instant;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// Measures each exit's single-input latency (seconds) on the planned path.
/// Informational only — admission uses the fixed cost table below.
fn calibrate(network: &MultiExitNetwork, probe: &ie_tensor::Tensor) -> Vec<f64> {
    let mut plan = network.execution_plan();
    let reps = 20;
    (0..network.num_exits())
        .map(|exit| {
            let t0 = Instant::now();
            for _ in 0..reps {
                network.forward_to_exit_with(&mut plan, probe, exit).expect("calibration pass");
            }
            t0.elapsed().as_secs_f64() / reps as f64
        })
        .collect()
}

/// FNV-1a over the deterministic response content — the replay byte-identity
/// witness the CI chaos matrix compares across worker counts.
fn digest_responses(responses: &[Response]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in responses {
        eat(&r.id.to_le_bytes());
        match &r.verdict {
            Verdict::Served { exit, prediction, confidence } => {
                eat(&[0]);
                eat(&(*exit as u64).to_le_bytes());
                eat(&(*prediction as u64).to_le_bytes());
                eat(&confidence.to_bits().to_le_bytes());
            }
            Verdict::Rejected => eat(&[1]),
            Verdict::Shed { reason } => {
                eat(&[2]);
                eat(&[*reason as u8]);
            }
        }
    }
    h
}

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut out = None;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--out" => out = Some(args.next().expect("--out needs a path")),
                other => panic!("unknown argument {other:?} (only --out <path> is supported)"),
            }
        }
        out
    };
    let threads = serve_threads();
    let window = WindowConfig {
        max_batch: env_usize("IE_SERVE_WINDOW", 8),
        deadline_s: env_usize("IE_SERVE_DEADLINE_MS", 2) as f64 / 1000.0,
    };
    let overload = OverloadConfig::from_env();
    let chaos = ChaosPlan::from_env();
    let total = env_usize("IE_SERVE_REQUESTS", 512);

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(42);
    let network =
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).expect("demo network");
    let data = SyntheticDataset::generate(3, 8, total, 0.1, 7);
    let samples: Vec<_> = data.train().iter().chain(data.test()).cloned().collect();

    let measured = calibrate(&network, &samples[0].image);
    println!(
        "measured per-exit latency (us): {:?} (informational)",
        measured.iter().map(|c| (c * 1e6).round()).collect::<Vec<_>>()
    );
    // Fixed, platform-independent cost table: exit i costs 2^i · 2 ms. Using
    // it (instead of the measurement) keeps admission decisions — and
    // therefore the whole replay — byte-identical everywhere.
    let costs: Vec<f64> =
        (0..network.num_exits()).map(|i| 0.002 * f64::powi(2.0, i as i32)).collect();
    let accuracies = vec![0.6; network.num_exits()];
    let mut admission =
        LatencyAdmission::static_lut(costs.clone(), accuracies, StateDiscretizer::paper_default())
            .expect("admission table");

    // Open-loop stream at 2× the deepest-exit service rate (gap = half the
    // cheapest exit's cost), budgets sweeping from below the cheapest exit
    // (rejected) to beyond the deepest (full depth) — sustained overload, so
    // a bounded queue has something to shed and `degrade` something to save.
    let gap_s = costs[0] / 2.0;
    let max_cost = costs.last().copied().unwrap_or(1e-3);
    let requests: Vec<Request> = (0..total)
        .map(|i| Request {
            id: i as u64,
            arrival_s: i as f64 * gap_s,
            budget_s: (i % 10) as f64 / 6.0 * max_cost,
            input: samples[i % samples.len()].image.clone(),
        })
        .collect();

    let mut pool = BatchPlanPool::new();
    let config = ServeConfig { window, threads, overload };
    let mut server = Server::new(&network, config, &mut pool).expect("server config");
    let outcome = server.replay_chaotic(&mut admission, &requests, &chaos).expect("replay");
    for plan in server.into_plans() {
        pool.put(plan);
    }

    let r = &outcome.report;
    assert!(r.conservation_holds(), "request conservation violated");
    let queue_cap_knob = if overload.queue_cap == usize::MAX { 0 } else { overload.queue_cap };
    println!("policy          : {}", admission.policy_name());
    println!(
        "threads x window: {threads} x {} (deadline {:.1} ms)",
        window.max_batch,
        window.deadline_s * 1e3
    );
    println!(
        "overload        : cap {} ({}), chaos seed {}",
        queue_cap_knob,
        overload.policy.name(),
        chaos.seed
    );
    println!("served/rej/shed : {} / {} / {} (of {})", r.served, r.rejected, r.shed, r.submitted);
    println!(
        "degraded        : {} | retried {} | restarted {} | stalled {}",
        r.degraded, r.retried, r.restarted, r.stalled
    );
    println!("per-exit served : {:?}", r.per_exit);
    println!("batches (fill)  : {} ({:.2})", r.batches, r.mean_batch_fill);
    println!(
        "queue wait      : p50 {:.3} ms, p99 {:.3} ms",
        r.wait_p50_s * 1e3,
        r.wait_p99_s * 1e3
    );
    println!(
        "latency         : p50 {:.3} ms, p99 {:.3} ms",
        r.latency_p50_s * 1e3,
        r.latency_p99_s * 1e3
    );
    println!(
        "throughput      : {:.0} req/s raw, {:.0} req/s goodput ({} met deadline)",
        r.throughput_rps, r.goodput_rps, r.deadline_met
    );

    if let Some(path) = out_path {
        // Only the deterministic slice of the run: no thread count, no
        // wall-clock timing — `diff` across worker counts must come up empty.
        let per_exit = r.per_exit.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ");
        let json = format!(
            "{{\n  \"requests\": {},\n  \"window\": {},\n  \"deadline_ms\": {},\n  \
             \"queue_cap\": {},\n  \"shed_policy\": \"{}\",\n  \"chaos_seed\": {},\n  \
             \"submitted\": {},\n  \"served\": {},\n  \"rejected\": {},\n  \"shed\": {},\n  \
             \"degraded\": {},\n  \"retried\": {},\n  \"restarted\": {},\n  \"stalled\": {},\n  \
             \"deadline_met\": {},\n  \"batches\": {},\n  \"per_exit\": [{}],\n  \
             \"wait_p50_us\": {},\n  \"wait_p99_us\": {},\n  \"responses_fnv1a\": \"{:#018x}\"\n}}\n",
            total,
            window.max_batch,
            window.deadline_s * 1e3,
            queue_cap_knob,
            overload.policy.name(),
            chaos.seed,
            r.submitted,
            r.served,
            r.rejected,
            r.shed,
            r.degraded,
            r.retried,
            r.restarted,
            r.stalled,
            r.deadline_met,
            r.batches,
            per_exit,
            r.wait_p50_s * 1e6,
            r.wait_p99_s * 1e6,
            digest_responses(&outcome.responses),
        );
        std::fs::write(&path, json).expect("write --out file");
        println!("wrote {path}");
    }
}
