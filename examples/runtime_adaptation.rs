//! Runtime-adaptation deep dive: deploy the compressed multi-exit model and
//! compare four exit-selection strategies under the same harvesting
//! environment — the static LUT built at compression time, a greedy
//! "spend everything now" rule, a fixed reserve margin, and the paper's
//! Q-learning agent — and show how the Q-learning agent redistributes events
//! across exits as it learns (Fig. 7 of the paper).
//!
//! ```text
//! cargo run --release --example runtime_adaptation
//! ```

use intermittent_multiexit::core::policies::{GreedyAffordablePolicy, ReserveMarginPolicy};
use intermittent_multiexit::core::{
    DeployedModel, EventLoopSimulator, ExitPolicy, ExperimentConfig,
};
use intermittent_multiexit::runtime::{
    AdaptationConfig, RuntimeAdaptation, StateDiscretizer, StaticLutPolicy,
};
use intermittent_multiexit::search::{CompressionEnv, RewardMode};

/// Name, IEpmJ, all-event accuracy and per-exit counts of one simulated run.
type PolicySummary = (String, f64, f64, Vec<usize>);

fn run_policy(
    config: &ExperimentConfig,
    model: &DeployedModel,
    policy: &mut dyn ExitPolicy,
) -> Result<PolicySummary, Box<dyn std::error::Error>> {
    let report = EventLoopSimulator::new(config).run(model, policy)?;
    Ok((
        policy.name().to_string(),
        report.ie_pmj(),
        report.accuracy_all_events(),
        report.exit_counts.clone(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::paper_default();

    // Deploy the reference nonuniform policy (the search-found policy from the
    // `figures` harness behaves the same way; this keeps the example fast).
    let env = CompressionEnv::new(&config, RewardMode::ExitGuided)?;
    let layers = env.layers();
    let policy = ie_bench_reference(layers);
    let outcome = env.evaluate(&policy)?;
    let model = DeployedModel::new(outcome.profile.clone(), config.cost_model());
    println!(
        "deployed model: {:.1} KB, per-exit energy {:?} mJ, per-exit accuracy {:?}",
        model.model_size_bytes() as f64 / 1024.0,
        model.exit_energies_mj().iter().map(|e| format!("{e:.2}")).collect::<Vec<_>>(),
        model.exit_accuracies().iter().map(|a| format!("{:.1}%", a * 100.0)).collect::<Vec<_>>()
    );

    // Non-learning strategies.
    println!("\nstrategy comparison (same trace, same 500 events):");
    let mut greedy = GreedyAffordablePolicy::new();
    let mut reserve = ReserveMarginPolicy::new(0.5);
    let mut static_lut = StaticLutPolicy::build(
        &model,
        config.storage_capacity_mj,
        StateDiscretizer::paper_default(),
    );
    for entry in [
        run_policy(&config, &model, &mut greedy)?,
        run_policy(&config, &model, &mut reserve)?,
        run_policy(&config, &model, &mut static_lut)?,
    ] {
        println!(
            "  {:<18} IEpmJ {:.3}  accuracy(all events) {:.1}%  exit counts {:?}",
            entry.0,
            entry.1,
            entry.2 * 100.0,
            entry.3
        );
    }

    // The learning strategy (Fig. 7).
    let adaptation =
        RuntimeAdaptation::new(AdaptationConfig { episodes: 16, ..Default::default() })
            .run(&config, &model)?;
    println!("\nq-learning adaptation over 16 episodes:");
    for (i, acc) in adaptation.learning_curve.iter().enumerate() {
        if i % 4 == 0 || i + 1 == adaptation.learning_curve.len() {
            println!("  episode {:>2}: accuracy over all events {:.1}%", i + 1, acc * 100.0);
        }
    }
    println!(
        "  static LUT stays at {:.1}%; final improvement {:+.1} percentage points",
        adaptation.static_accuracy * 100.0,
        adaptation.improvement_over_static() * 100.0
    );
    println!(
        "  final exit distribution (q-learning): {:?} of {} processed events",
        adaptation.final_report.exit_counts, adaptation.final_report.processed_events
    );
    Ok(())
}

/// The Fig. 4-style reference nonuniform policy (duplicated from the bench
/// harness so the example only depends on the published library API).
fn ie_bench_reference(
    layers: &[intermittent_multiexit::nn::spec::CompressibleLayer],
) -> intermittent_multiexit::compress::CompressionPolicy {
    use intermittent_multiexit::compress::LayerPolicy;
    layers
        .iter()
        .map(|l| {
            if l.is_conv {
                if l.first_exit == 0 {
                    LayerPolicy::new(0.5, 8, 8).expect("valid")
                } else {
                    LayerPolicy::new(0.25, 4, 8).expect("valid")
                }
            } else if l.weight_params > 20_000 {
                LayerPolicy::new(0.35, 1, 8).expect("valid")
            } else {
                LayerPolicy::new(0.5, 2, 8).expect("valid")
            }
        })
        .collect()
}
