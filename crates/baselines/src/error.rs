use std::fmt;

/// Errors produced by the baseline runners.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Propagated core error.
    Core(ie_core::CoreError),
    /// Propagated MCU-substrate error.
    Mcu(ie_mcu::McuError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Core(e) => write!(f, "core error: {e}"),
            BaselineError::Mcu(e) => write!(f, "mcu error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Core(e) => Some(e),
            BaselineError::Mcu(e) => Some(e),
        }
    }
}

impl From<ie_core::CoreError> for BaselineError {
    fn from(e: ie_core::CoreError) -> Self {
        BaselineError::Core(e)
    }
}

impl From<ie_mcu::McuError> for BaselineError {
    fn from(e: ie_mcu::McuError) -> Self {
        BaselineError::Mcu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs: Vec<BaselineError> = vec![
            ie_core::CoreError::InvalidConfig("x".into()).into(),
            ie_mcu::McuError::EmptyTaskGraph.into(),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(e).is_some());
        }
    }
}
