//! `ie-mcu` — the microcontroller substrate.
//!
//! The paper deploys onto a TI MSP432 and reports energy as 1.5 mJ per million
//! FLOPs with one-second latency "time units". This crate captures that
//! device model and the intermittent-execution machinery the baselines need:
//!
//! * [`McuDevice`] — storage and compute budget of the target MCU (the
//!   `msp432()` constructor carries the paper's constants),
//! * [`CostModel`] — FLOPs → energy (mJ) and FLOPs → latency (s) conversion,
//!   plus checkpointing overheads,
//! * [`NonvolatileMemory`] — a FRAM-like byte store that survives power
//!   failures,
//! * [`IntermittentExecutor`] — a SONIC-style task-based executor that runs a
//!   [`TaskGraph`] across as many power cycles as the harvested energy
//!   requires, checkpointing progress in non-volatile memory and recovering
//!   from it after every reboot,
//! * [`TwoBankCheckpoint`] — crash-consistent A/B checkpoint records (CRC-32,
//!   monotonic generation counter) that survive torn NV writes,
//! * [`FaultPlan`] / [`FaultInjector`] — deterministic power-cut injection:
//!   between tasks, mid-task, or at a chosen byte offset inside the
//!   checkpoint's NV write.
//!
//! # Example
//!
//! ```
//! use ie_mcu::{CostModel, McuDevice};
//!
//! let device = McuDevice::msp432();
//! let cost = CostModel::for_device(&device);
//! // A 1.0-MFLOP inference costs 1.5 mJ on the paper's device model.
//! assert!((cost.inference_energy_mj(1_000_000) - 1.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod cost;
mod device;
mod error;
mod fault;
mod intermittent;
mod nonvolatile;

pub use checkpoint::{crc32, CheckpointRecord, TwoBankCheckpoint, RECORD_BYTES};
pub use cost::CostModel;
pub use device::McuDevice;
pub use error::McuError;
pub use fault::{fault_seed_from_env, FaultInjector, FaultPlan, ScheduledCut, TaskCut};
pub use intermittent::{
    task_digest, ExecutionReport, IntermittentExecutor, Task, TaskGraph, DIGEST_INIT,
};
pub use nonvolatile::NonvolatileMemory;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, McuError>;
