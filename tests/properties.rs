//! Cross-crate property-based tests (proptest) on the system's invariants:
//! any valid compression policy yields a consistent cost/accuracy profile, the
//! energy accounting never goes negative, and the event simulator conserves
//! event counts for arbitrary policies and environments.

use intermittent_multiexit::compress::{
    CalibratedAccuracyModel, CompressionPolicy, LayerPolicy, PolicyEvaluator,
};
use intermittent_multiexit::core::policies::{FixedExitPolicy, ReserveMarginPolicy};
use intermittent_multiexit::core::{DeployedModel, EventLoopSimulator, ExperimentConfig};
use intermittent_multiexit::energy::{EnergyStorage, EventDistribution};
use intermittent_multiexit::nn::spec::lenet_multi_exit;
use proptest::prelude::*;

fn arb_layer_policy() -> impl Strategy<Value = LayerPolicy> {
    (1u32..=20, 1u8..=8, 1u8..=8).prop_map(|(ratio_steps, wbits, abits)| {
        LayerPolicy::new(ratio_steps as f32 * 0.05, wbits, abits).expect("grid values are valid")
    })
}

fn arb_policy(layers: usize) -> impl Strategy<Value = CompressionPolicy> {
    proptest::collection::vec(arb_layer_policy(), layers).prop_map(CompressionPolicy::from_layers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any policy on the paper backbone produces monotone exit FLOPs, bounded
    /// accuracies and a size no larger than the fp32 size.
    #[test]
    fn any_policy_yields_a_consistent_profile(policy in arb_policy(lenet_multi_exit().compressible_layers().len())) {
        let arch = lenet_multi_exit();
        let evaluator = PolicyEvaluator::new(&arch, CalibratedAccuracyModel::for_paper_backbone());
        let profile = evaluator.evaluate(&policy).expect("every grid policy evaluates");
        prop_assert_eq!(profile.exit_flops.len(), 3);
        // Note: per-exit FLOPs need not be monotone across exits for arbitrary
        // nonuniform policies (a heavily pruned deep trunk can undercut an
        // unpruned early branch), so only the per-exit upper bounds are checked.
        prop_assert!(profile.model_size_bytes <= arch.model_size_bytes(32));
        for (i, acc) in profile.exit_accuracy.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(acc), "exit {} accuracy {}", i, acc);
        }
        for exit in 0..3 {
            prop_assert!(profile.exit_flops[exit] <= arch.exit_flops()[exit]);
        }
        // Incremental continuation never costs more than starting over.
        if let Some(inc) = profile.incremental_flops(0, 2) {
            prop_assert!(inc <= profile.exit_flops[2]);
        }
    }

    /// Energy storage never goes negative or above capacity, whatever the
    /// harvest/consume interleaving.
    #[test]
    fn storage_stays_within_bounds(ops in proptest::collection::vec((0.0f64..3.0, 0.0f64..2.0), 1..200),
                                    capacity in 1.0f64..50.0,
                                    efficiency in 0.1f64..1.0) {
        let mut storage = EnergyStorage::new(capacity, efficiency);
        for (harvest, consume) in ops {
            storage.harvest(harvest);
            if storage.can_supply(consume) {
                storage.consume(consume).expect("checked supply");
            }
            prop_assert!(storage.level_mj() >= 0.0);
            prop_assert!(storage.level_mj() <= capacity + 1e-9);
        }
        prop_assert!(storage.conservation_error_mj() < 1e-6);
    }

    /// The event-loop simulator accounts for every event under arbitrary
    /// policies, event counts and capacitor sizes.
    #[test]
    fn simulator_conserves_events(num_events in 10usize..120,
                                  capacity in 2.0f64..40.0,
                                  reserve in 0.0f64..0.8,
                                  fixed_exit in 0usize..3,
                                  poisson in proptest::bool::ANY) {
        let config = ExperimentConfig {
            num_events,
            storage_capacity_mj: capacity,
            event_distribution: if poisson { EventDistribution::Poisson } else { EventDistribution::Uniform },
            ..ExperimentConfig::paper_default()
        };
        let model = DeployedModel::uncompressed_reference(&config).expect("builds");
        let simulator = EventLoopSimulator::new(&config);
        for report in [
            simulator.run(&model, &mut ReserveMarginPolicy::new(reserve)).expect("runs"),
            simulator.run(&model, &mut FixedExitPolicy::new(fixed_exit)).expect("runs"),
        ] {
            prop_assert_eq!(report.total_events, num_events);
            prop_assert_eq!(report.processed_events + report.missed_events, num_events);
            prop_assert_eq!(report.exit_counts.iter().sum::<usize>(), report.processed_events);
            prop_assert!(report.correct_events <= report.processed_events);
            prop_assert!(report.total_consumed_mj >= 0.0);
            prop_assert!((0.0..=1.0).contains(&report.accuracy_all_events()));
        }
    }
}
