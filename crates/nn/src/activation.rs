use crate::Result;
use ie_tensor::Tensor;

/// Rectified linear unit activation layer.
///
/// Stateless; the backward pass masks the upstream gradient with the sign of
/// the forward input.
///
/// # Example
///
/// ```
/// use ie_nn::Relu;
/// use ie_tensor::Tensor;
///
/// let relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap())?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok::<(), ie_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Relu;

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Relu
    }

    /// Forward pass: `max(0, x)` element-wise.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` keeps the layer signature uniform.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.relu())
    }

    /// Backward pass: passes gradients only where the input was positive.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `input` and `grad_output` differ in shape.
    pub fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        let mask = input.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        Ok(mask.mul(grad_output)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_zeroes_negatives() {
        let relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 1.5], &[4]).unwrap();
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 1.5]);
    }

    #[test]
    fn backward_masks_gradient() {
        let relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0, 3.0], &[4]).unwrap();
        let go = Tensor::ones(&[4]);
        let dx = relu.backward(&x, &go).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_rejects_shape_mismatch() {
        let relu = Relu::new();
        let x = Tensor::zeros(&[3]);
        let go = Tensor::zeros(&[4]);
        assert!(relu.backward(&x, &go).is_err());
    }
}
