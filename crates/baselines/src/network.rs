use ie_mcu::TaskGraph;

/// A single-exit baseline network, described by the figures the paper reports
/// for it: FLOPs per inference, per-inference accuracy and weight size.
///
/// * **SonicNet** — the network deployed by Gobieski et al.'s SONIC/TAILS
///   intermittent inference framework \[9\]: 2.0 M FLOPs, 75.4 % accuracy on
///   the processed events.
/// * **SpArSeNet** — the CNN produced by the SpArSe NAS framework for MCUs
///   \[13\]: 11.4 M FLOPs, 82.7 % accuracy.
/// * **LeNet-Cifar** — LeNet hand-adapted to CIFAR-10: low FLOPs (≈0.72 M),
///   74.7 % accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineNetwork {
    name: String,
    flops: u64,
    accuracy: f64,
    weight_bytes: u64,
    num_tasks: usize,
}

impl BaselineNetwork {
    /// Creates a custom baseline description.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]` or `num_tasks` is zero.
    pub fn new(name: &str, flops: u64, accuracy: f64, weight_bytes: u64, num_tasks: usize) -> Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy must be a fraction");
        assert!(num_tasks > 0, "a network needs at least one task");
        BaselineNetwork { name: name.to_string(), flops, accuracy, weight_bytes, num_tasks }
    }

    /// The SONIC/TAILS baseline \[9\].
    pub fn sonic_net() -> Self {
        BaselineNetwork::new("SonicNet", 2_000_000, 0.754, 100 * 1024, 20)
    }

    /// The SpArSe NAS baseline \[13\].
    pub fn sparse_net() -> Self {
        BaselineNetwork::new("SpArSeNet", 11_400_000, 0.827, 64 * 1024, 60)
    }

    /// LeNet manually adapted to CIFAR-10.
    pub fn lenet_cifar() -> Self {
        BaselineNetwork::new("LeNet-Cifar", 720_000, 0.747, 300 * 1024, 8)
    }

    /// All three published baselines, in the order of the paper's figures.
    pub fn paper_baselines() -> Vec<BaselineNetwork> {
        vec![Self::sonic_net(), Self::sparse_net(), Self::lenet_cifar()]
    }

    /// Baseline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// FLOPs per inference.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Per-inference accuracy on processed events, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Weight storage footprint in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// Number of tasks the intermittent runtime splits one inference into.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// The task graph of one inference.
    pub fn task_graph(&self) -> TaskGraph {
        TaskGraph::split_evenly(&self.name, self.flops, self.num_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figures_are_encoded() {
        let sonic = BaselineNetwork::sonic_net();
        assert_eq!(sonic.flops(), 2_000_000);
        assert!((sonic.accuracy() - 0.754).abs() < 1e-12);
        let sparse = BaselineNetwork::sparse_net();
        assert_eq!(sparse.flops(), 11_400_000);
        assert!((sparse.accuracy() - 0.827).abs() < 1e-12);
        let lenet = BaselineNetwork::lenet_cifar();
        assert!(lenet.flops() < sonic.flops());
        assert_eq!(BaselineNetwork::paper_baselines().len(), 3);
    }

    #[test]
    fn task_graph_preserves_total_flops() {
        for b in BaselineNetwork::paper_baselines() {
            let g = b.task_graph();
            assert_eq!(g.total_flops(), b.flops());
            assert_eq!(g.len(), b.num_tasks());
        }
    }

    #[test]
    #[should_panic(expected = "accuracy must be a fraction")]
    fn invalid_accuracy_panics() {
        let _ = BaselineNetwork::new("bad", 1, 1.5, 1, 1);
    }
}
