//! Element-wise arithmetic between tensors and scalars, plus the dispatched
//! slice kernels (max-pool window scans, ReLU, softmax) the `ie_nn` forward
//! hot path routes through the runtime ISA dispatch ([`crate::dispatch`]).
//!
//! # Max/ReLU select semantics
//!
//! Every max-style fold in this module uses the select `if v > acc { v }
//! else { acc }` — exactly what the x86 `vmaxps`/`vpmaxsb` instructions
//! compute with `v` as the first operand. That makes the portable and the
//! AVX2 tiers bit-identical on **all** inputs, including NaN (ignored: a NaN
//! candidate never beats the accumulator) and signed-zero ties (the
//! accumulator survives). The pool kernels additionally fix one window
//! reduction order — columns first (ascending `dy`), then across the window
//! row (ascending `dx`) — which every tier implements.

use crate::dispatch::{self, IsaTier};
use crate::{Result, Tensor, TensorError};

/// The max-select every tier of the `f32` max kernels uses: `v` beats `acc`
/// only when strictly greater, exactly `vmaxps(v, acc)`.
#[inline(always)]
fn sel_max(acc: f32, v: f32) -> f32 {
    if v > acc {
        v
    } else {
        acc
    }
}

// ---------------------------------------------------------------------------
// Max pooling
// ---------------------------------------------------------------------------

/// Portable plane scan shared by the dispatcher and the vector tiers' tail
/// handling: pools one `[h, w]` plane into `[h/size, w/size]` with the fixed
/// column-then-row window order.
#[inline(always)]
fn max_pool_plane_f32(src: &[f32], h: usize, w: usize, size: usize, dst: &mut [f32]) {
    let _ = h;
    let (oh, ow) = (src.len() / w / size, w / size);
    for oy in 0..oh {
        let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
        for (ox, o) in dst_row.iter_mut().enumerate() {
            let mut best = f32::NEG_INFINITY;
            for dx in 0..size {
                let mut col = f32::NEG_INFINITY;
                for dy in 0..size {
                    col = sel_max(col, src[(oy * size + dy) * w + ox * size + dx]);
                }
                best = sel_max(best, col);
            }
            *o = best;
        }
    }
}

/// Portable `i8` (activation-code) plane scan; integer max is a total order,
/// so the reduction order is irrelevant to the result.
#[inline(always)]
fn max_pool_plane_i8(src: &[i8], h: usize, w: usize, size: usize, dst: &mut [i8]) {
    let _ = h;
    let (oh, ow) = (src.len() / w / size, w / size);
    for oy in 0..oh {
        let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
        for (ox, o) in dst_row.iter_mut().enumerate() {
            let mut best = i8::MIN;
            for dy in 0..size {
                for dx in 0..size {
                    best = best.max(src[(oy * size + dy) * w + ox * size + dx]);
                }
            }
            *o = best;
        }
    }
}

fn check_pool(src_len: usize, planes: usize, h: usize, w: usize, size: usize, dst_len: usize) {
    assert!(size > 0, "pool size must be non-zero");
    assert_eq!(h % size, 0, "pool: height {h} not divisible by {size}");
    assert_eq!(w % size, 0, "pool: width {w} not divisible by {size}");
    assert_eq!(src_len, planes * h * w, "pool: src length {src_len} != {planes}x{h}x{w}");
    assert_eq!(
        dst_len,
        planes * (h / size) * (w / size),
        "pool: dst length {dst_len} != pooled {planes}x{}x{}",
        h / size,
        w / size
    );
}

/// Non-overlapping 2-D max pool over `planes` stacked `[h, w]` planes (the
/// window equals the stride). Dispatched to the active ISA tier; on AVX2 the
/// ubiquitous `size == 2` case runs an explicit 8-outputs-per-step vector
/// kernel (vertical `vmaxps` of the two rows, then a pairwise horizontal
/// `vmaxps` after an even/odd deinterleave).
///
/// # Panics
///
/// Panics when `size` is zero, does not divide `h`/`w`, or a buffer length
/// does not match.
pub fn max_pool_planes_into(
    src: &[f32],
    planes: usize,
    h: usize,
    w: usize,
    size: usize,
    dst: &mut [f32],
) {
    max_pool_planes_into_tier(dispatch::active(), src, planes, h, w, size, dst);
}

/// [`max_pool_planes_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`max_pool_planes_into`].
pub fn max_pool_planes_into_tier(
    tier: IsaTier,
    src: &[f32],
    planes: usize,
    h: usize,
    w: usize,
    size: usize,
    dst: &mut [f32],
) {
    check_pool(src.len(), planes, h, w, size, dst.len());
    let (in_plane, out_plane) = (h * w, (h / size) * (w / size));
    #[cfg(target_arch = "x86_64")]
    if x86::try_max_pool_f32(tier, src, planes, in_plane, out_plane, w, size, dst) {
        return;
    }
    let _ = tier;
    for p in 0..planes {
        max_pool_plane_f32(
            &src[p * in_plane..(p + 1) * in_plane],
            h,
            w,
            size,
            &mut dst[p * out_plane..(p + 1) * out_plane],
        );
    }
}

/// [`max_pool_planes_into`] over `i8` activation codes (the quantized code
/// domain). Quantization is monotone, so pooling codes equals pooling the
/// real values and quantizing after; on AVX2 the `size == 2` case reduces 32
/// codes to 16 outputs per step with `vpmaxsb`.
///
/// # Panics
///
/// Panics under the same conditions as [`max_pool_planes_into`].
pub fn max_pool_planes_i8_into(
    src: &[i8],
    planes: usize,
    h: usize,
    w: usize,
    size: usize,
    dst: &mut [i8],
) {
    max_pool_planes_i8_into_tier(dispatch::active(), src, planes, h, w, size, dst);
}

/// [`max_pool_planes_i8_into`] on an explicitly chosen ISA tier (clamped to
/// the hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`max_pool_planes_into`].
pub fn max_pool_planes_i8_into_tier(
    tier: IsaTier,
    src: &[i8],
    planes: usize,
    h: usize,
    w: usize,
    size: usize,
    dst: &mut [i8],
) {
    check_pool(src.len(), planes, h, w, size, dst.len());
    let (in_plane, out_plane) = (h * w, (h / size) * (w / size));
    #[cfg(target_arch = "x86_64")]
    if x86::try_max_pool_i8(tier, src, planes, in_plane, out_plane, w, size, dst) {
        return;
    }
    let _ = tier;
    for p in 0..planes {
        max_pool_plane_i8(
            &src[p * in_plane..(p + 1) * in_plane],
            h,
            w,
            size,
            &mut dst[p * out_plane..(p + 1) * out_plane],
        );
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// In-place ReLU over a slice: `v = if v > 0.0 { v } else { 0.0 }` — exactly
/// `vmaxps(v, 0)`, so NaN and `-0.0` map to `+0.0` on every tier.
pub fn relu_slice(values: &mut [f32]) {
    relu_slice_tier(dispatch::active(), values);
}

/// [`relu_slice`] on an explicitly chosen ISA tier (clamped to the hardware).
pub fn relu_slice_tier(tier: IsaTier, values: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if x86::try_relu_slice(tier, values) {
        return;
    }
    let _ = tier;
    for v in values {
        *v = if *v > 0.0 { *v } else { 0.0 };
    }
}

/// In-place code-domain ReLU: clamps every `i8` activation code to at least
/// `floor` (the quantization zero point — the code of the real value `0.0`).
pub fn relu_codes_floor(codes: &mut [i8], floor: i8) {
    relu_codes_floor_tier(dispatch::active(), codes, floor);
}

/// [`relu_codes_floor`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
pub fn relu_codes_floor_tier(tier: IsaTier, codes: &mut [i8], floor: i8) {
    #[cfg(target_arch = "x86_64")]
    if x86::try_relu_codes_floor(tier, codes, floor) {
        return;
    }
    let _ = tier;
    for c in codes {
        *c = (*c).max(floor);
    }
}

// ---------------------------------------------------------------------------
// Fused bias (+ ReLU) epilogues
// ---------------------------------------------------------------------------

/// Portable body of the conv-layout bias epilogue (recompiled for AVX2 by
/// the dispatcher): every `plane`-sized row of `out` gets its row's scalar
/// bias added, with the optional ReLU select fused in.
#[inline(always)]
fn bias_rows_body(out: &mut [f32], plane: usize, bias: &[f32], relu: bool) {
    if relu {
        for (row, &b) in out.chunks_exact_mut(plane.max(1)).zip(bias) {
            for v in row {
                let t = *v + b;
                *v = if t > 0.0 { t } else { 0.0 };
            }
        }
    } else {
        for (row, &b) in out.chunks_exact_mut(plane.max(1)).zip(bias) {
            for v in row {
                *v += b;
            }
        }
    }
}

/// Portable body of the dense-layout bias epilogue: element `i` of each
/// `bias.len()`-sized sample row gets `bias[i]`, optional fused ReLU.
#[inline(always)]
fn bias_samples_body(out: &mut [f32], bias: &[f32], relu: bool) {
    for sample in out.chunks_exact_mut(bias.len().max(1)) {
        if relu {
            for (o, &b) in sample.iter_mut().zip(bias) {
                let t = *o + b;
                *o = if t > 0.0 { t } else { 0.0 };
            }
        } else {
            for (o, &b) in sample.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }
}

/// Fused bias (+ ReLU) epilogue over the convolution output layout: `out` is
/// `[rows, plane]` row-major and row `r` receives `bias[r]`; with `relu` the
/// ReLU select (`t` if `t > 0.0`, else `0.0`) is applied in the same sweep.
/// Dispatched to the active ISA tier; bit-identical across tiers.
pub fn add_bias_rows(out: &mut [f32], plane: usize, bias: &[f32], relu: bool) {
    add_bias_rows_tier(dispatch::active(), out, plane, bias, relu);
}

/// [`add_bias_rows`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
pub fn add_bias_rows_tier(tier: IsaTier, out: &mut [f32], plane: usize, bias: &[f32], relu: bool) {
    #[cfg(target_arch = "x86_64")]
    if x86::try_bias_rows(tier, out, plane, bias, relu) {
        return;
    }
    let _ = tier;
    bias_rows_body(out, plane, bias, relu);
}

/// Fused bias (+ ReLU) epilogue over the sample-major dense layout: `out` is
/// `[batch, features]` with `bias` added per feature. Dispatched; bit-
/// identical across tiers.
pub fn add_bias_samples(out: &mut [f32], bias: &[f32], relu: bool) {
    add_bias_samples_tier(dispatch::active(), out, bias, relu);
}

/// [`add_bias_samples`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
pub fn add_bias_samples_tier(tier: IsaTier, out: &mut [f32], bias: &[f32], relu: bool) {
    #[cfg(target_arch = "x86_64")]
    if x86::try_bias_samples(tier, out, bias, relu) {
        return;
    }
    let _ = tier;
    bias_samples_body(out, bias, relu);
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

/// Lanes of the softmax reductions (matches the dot-product lane count).
const SM_LANES: usize = 8;

/// Finishes an 8-lane max fold: fixed pairwise tree, then the tail elements
/// in order. Shared verbatim by every tier, so the reduction order — and
/// therefore the result bits — cannot differ between them.
#[inline(always)]
fn finish_max(lanes: [f32; SM_LANES], tail: &[f32]) -> f32 {
    let m01 = sel_max(lanes[0], lanes[1]);
    let m23 = sel_max(lanes[2], lanes[3]);
    let m45 = sel_max(lanes[4], lanes[5]);
    let m67 = sel_max(lanes[6], lanes[7]);
    let mut m = sel_max(sel_max(m01, m23), sel_max(m45, m67));
    for &x in tail {
        m = sel_max(m, x);
    }
    m
}

/// Finishes an 8-lane sum fold: the dot-product reduction tree, then the
/// tail elements in order. Shared verbatim by every tier.
#[inline(always)]
fn finish_sum(lanes: [f32; SM_LANES], tail: &[f32]) -> f32 {
    let mut sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for &x in tail {
        sum += x;
    }
    sum
}

/// Exponential-function range-reduction and polynomial constants (the classic
/// Cephes/`sse_mathfun` single-precision kernel): `exp(x) = 2^n · exp(r)`
/// with `n = round(x·log2 e)` and `r = x − n·ln 2` split in two steps so the
/// subtraction is exact, then a degree-5 polynomial for `exp(r)` on
/// `|r| ≤ ½·ln 2`. Every step is an individually rounded scalar operation
/// (no FMA), so the vector tiers reproduce the portable tier bit for bit.
mod expc {
    pub(super) const HI: f32 = 88.376_26;
    pub(super) const LO: f32 = -87.336_55;
    pub(super) const LOG2E: f32 = std::f32::consts::LOG2_E;
    pub(super) const LN2_HI: f32 = 0.693_359_4;
    pub(super) const LN2_LO: f32 = -2.121_944_4e-4;
    pub(super) const P0: f32 = 1.987_569_1e-4;
    pub(super) const P1: f32 = 1.398_199_9e-3;
    pub(super) const P2: f32 = 8.333_452e-3;
    pub(super) const P3: f32 = 4.166_579_6e-2;
    pub(super) const P4: f32 = 1.666_666_5e-1;
    pub(super) const P5: f32 = 5.000_000_4e-1;
}

/// Shared scalar exponential (see [`expc`]); maximum relative error ≈ 2⁻²³
/// on the reduced range, `exp_m(0) == 1.0` exactly. NaN inputs are
/// canonicalized to the quiet `f32::NAN` — hardware NaN *payload*
/// propagation depends on operand order, which codegen does not pin down, so
/// both tiers return one fixed NaN instead.
#[inline(always)]
fn exp_m(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let x = if x > expc::HI { expc::HI } else { x };
    let x = if x < expc::LO { expc::LO } else { x };
    let n = (x * expc::LOG2E).round_ties_even();
    let r = x - n * expc::LN2_HI;
    let r = r - n * expc::LN2_LO;
    let r2 = r * r;
    let p =
        ((((expc::P0 * r + expc::P1) * r + expc::P2) * r + expc::P3) * r + expc::P4) * r + expc::P5;
    let y = p * r2 + r + 1.0;
    let scale = f32::from_bits(((n as i32 + 127) as u32) << 23);
    y * scale
}

/// Portable softmax body: lane-parallel max, the shared exponential, a
/// lane-parallel sum and an elementwise normalising multiply.
#[inline(always)]
fn softmax_body(logits: &[f32], out: &mut [f32]) {
    let chunks = logits.len() / SM_LANES;
    let mut lanes = [f32::NEG_INFINITY; SM_LANES];
    for c in 0..chunks {
        let v: &[f32; SM_LANES] =
            logits[c * SM_LANES..(c + 1) * SM_LANES].try_into().expect("lane width");
        for t in 0..SM_LANES {
            lanes[t] = sel_max(lanes[t], v[t]);
        }
    }
    let max = finish_max(lanes, &logits[chunks * SM_LANES..]);
    for (o, &x) in out.iter_mut().zip(logits) {
        *o = exp_m(x - max);
    }
    let mut sums = [0.0f32; SM_LANES];
    for c in 0..chunks {
        let v: &[f32; SM_LANES] =
            out[c * SM_LANES..(c + 1) * SM_LANES].try_into().expect("lane width");
        for t in 0..SM_LANES {
            sums[t] += v[t];
        }
    }
    let sum = finish_sum(sums, &out[chunks * SM_LANES..]);
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Numerically stable softmax over a logits slice, written into `out`.
///
/// The maximum is subtracted before exponentiation; the exponential is the
/// shared polynomial kernel ([`expc`]), identical on every tier, and the
/// max/sum reductions use a fixed 8-lane tree so the result is a
/// deterministic function of the input alone. Dispatched to the active ISA
/// tier; bit-identical across tiers.
///
/// # Panics
///
/// Panics when `logits` is empty or the lengths differ.
pub fn softmax_slice_into(logits: &[f32], out: &mut [f32]) {
    softmax_slice_into_tier(dispatch::active(), logits, out);
}

/// [`softmax_slice_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when `logits` is empty or the lengths differ.
pub fn softmax_slice_into_tier(tier: IsaTier, logits: &[f32], out: &mut [f32]) {
    assert!(!logits.is_empty(), "softmax of an empty slice");
    assert_eq!(logits.len(), out.len(), "softmax: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if x86::try_softmax(tier, logits, out) {
        return;
    }
    let _ = tier;
    softmax_body(logits, out);
}

// ---------------------------------------------------------------------------
// AVX2 tier implementations (explicit `core::arch` intrinsics)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// Runs the AVX2 2×2 pool when the clamped tier and window size allow;
    /// returns `false` when the caller should take the portable path. Safe:
    /// the feature check sits right next to the `unsafe` calls it justifies.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn try_max_pool_f32(
        tier: IsaTier,
        src: &[f32],
        planes: usize,
        in_plane: usize,
        out_plane: usize,
        w: usize,
        size: usize,
        dst: &mut [f32],
    ) -> bool {
        if size != 2 || dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        for p in 0..planes {
            // SAFETY: `clamp` only returns Avx2 or above when AVX2 is
            // detected; lengths were validated by the dispatching wrapper.
            unsafe {
                max_pool_plane2_f32_avx2(
                    &src[p * in_plane..(p + 1) * in_plane],
                    w,
                    &mut dst[p * out_plane..(p + 1) * out_plane],
                );
            }
        }
        true
    }

    /// `i8` counterpart of [`try_max_pool_f32`].
    #[allow(clippy::too_many_arguments)]
    pub(super) fn try_max_pool_i8(
        tier: IsaTier,
        src: &[i8],
        planes: usize,
        in_plane: usize,
        out_plane: usize,
        w: usize,
        size: usize,
        dst: &mut [i8],
    ) -> bool {
        if size != 2 || dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        for p in 0..planes {
            // SAFETY: `clamp` only returns Avx2 or above when AVX2 is
            // detected; lengths were validated by the dispatching wrapper.
            unsafe {
                max_pool_plane2_i8_avx2(
                    &src[p * in_plane..(p + 1) * in_plane],
                    w,
                    &mut dst[p * out_plane..(p + 1) * out_plane],
                );
            }
        }
        true
    }

    /// AVX2 ReLU attempt; see [`try_max_pool_f32`].
    pub(super) fn try_relu_slice(tier: IsaTier, values: &mut [f32]) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { relu_slice_avx2(values) };
        true
    }

    /// AVX2 code-domain ReLU attempt; see [`try_max_pool_f32`].
    pub(super) fn try_relu_codes_floor(tier: IsaTier, codes: &mut [i8], floor: i8) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { relu_codes_floor_avx2(codes, floor) };
        true
    }

    /// AVX2 conv-layout bias epilogue attempt; see [`try_max_pool_f32`].
    pub(super) fn try_bias_rows(
        tier: IsaTier,
        out: &mut [f32],
        plane: usize,
        bias: &[f32],
        relu: bool,
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { bias_rows_avx2(out, plane, bias, relu) };
        true
    }

    /// AVX2 dense-layout bias epilogue attempt; see [`try_max_pool_f32`].
    pub(super) fn try_bias_samples(
        tier: IsaTier,
        out: &mut [f32],
        bias: &[f32],
        relu: bool,
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { bias_samples_avx2(out, bias, relu) };
        true
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn bias_rows_avx2(out: &mut [f32], plane: usize, bias: &[f32], relu: bool) {
        bias_rows_body(out, plane, bias, relu);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn bias_samples_avx2(out: &mut [f32], bias: &[f32], relu: bool) {
        bias_samples_body(out, bias, relu);
    }

    /// AVX2 softmax attempt; see [`try_max_pool_f32`].
    pub(super) fn try_softmax(tier: IsaTier, logits: &[f32], out: &mut [f32]) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected;
        // lengths were validated by the dispatching wrapper.
        unsafe { softmax_avx2(logits, out) };
        true
    }

    /// Pools one `[h, w]` plane with a 2×2 window, 8 outputs per step:
    /// vertical `vmaxps` of the two source rows, even/odd deinterleave,
    /// horizontal pairwise `vmaxps` — the same column-then-row select order
    /// as the portable scan, so ties and NaNs resolve identically.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and the buffer lengths match
    /// (`src` is `[h, w]` with even `h`/`w`, `dst` is `[h/2, w/2]`).
    #[target_feature(enable = "avx2")]
    unsafe fn max_pool_plane2_f32_avx2(src: &[f32], w: usize, dst: &mut [f32]) {
        let oh = src.len() / w / 2;
        let ow = w / 2;
        let ninf = _mm256_set1_ps(f32::NEG_INFINITY);
        for oy in 0..oh {
            let r0 = &src[(2 * oy) * w..(2 * oy + 1) * w];
            let r1 = &src[(2 * oy + 1) * w..(2 * oy + 2) * w];
            let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
            let blocks = ow / 8;
            // SAFETY: block b reads 16 floats from each row starting at 16b
            // (16b + 16 <= w) and writes 8 outputs at 8b (8b + 8 <= ow).
            unsafe {
                for b in 0..blocks {
                    let a0 = _mm256_loadu_ps(r0.as_ptr().add(16 * b));
                    let a1 = _mm256_loadu_ps(r0.as_ptr().add(16 * b + 8));
                    let b0 = _mm256_loadu_ps(r1.as_ptr().add(16 * b));
                    let b1 = _mm256_loadu_ps(r1.as_ptr().add(16 * b + 8));
                    // Column fold: sel(sel(-inf, row0), row1), candidate first.
                    let v0 = _mm256_max_ps(b0, _mm256_max_ps(a0, ninf));
                    let v1 = _mm256_max_ps(b1, _mm256_max_ps(a1, ninf));
                    // Deinterleave [x0..x15] into even/odd window columns.
                    let lo = _mm256_shuffle_ps::<0b10_00_10_00>(v0, v1);
                    let hi = _mm256_shuffle_ps::<0b11_01_11_01>(v0, v1);
                    let evens = _mm256_castpd_ps(_mm256_permute4x64_pd::<0b11_01_10_00>(
                        _mm256_castps_pd(lo),
                    ));
                    let odds = _mm256_castpd_ps(_mm256_permute4x64_pd::<0b11_01_10_00>(
                        _mm256_castps_pd(hi),
                    ));
                    // Row fold: sel(sel(-inf, even), odd).
                    let out = _mm256_max_ps(odds, _mm256_max_ps(evens, ninf));
                    _mm256_storeu_ps(dst_row.as_mut_ptr().add(8 * b), out);
                }
            }
            for ox in blocks * 8..ow {
                let mut best = f32::NEG_INFINITY;
                for dx in 0..2 {
                    let mut col = f32::NEG_INFINITY;
                    col = sel_max(col, r0[2 * ox + dx]);
                    col = sel_max(col, r1[2 * ox + dx]);
                    best = sel_max(best, col);
                }
                dst_row[ox] = best;
            }
        }
    }

    /// `i8` 2×2 pool, 16 outputs per step: vertical `vpmaxsb`, then the
    /// horizontal pair max via a sign-extending even/odd split to `i16`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and the buffer lengths match.
    #[target_feature(enable = "avx2")]
    unsafe fn max_pool_plane2_i8_avx2(src: &[i8], w: usize, dst: &mut [i8]) {
        let oh = src.len() / w / 2;
        let ow = w / 2;
        for oy in 0..oh {
            let r0 = &src[(2 * oy) * w..(2 * oy + 1) * w];
            let r1 = &src[(2 * oy + 1) * w..(2 * oy + 2) * w];
            let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
            let blocks = ow / 16;
            // SAFETY: block b reads 32 codes from each row at 32b
            // (32b + 32 <= w) and writes 16 outputs at 16b (16b + 16 <= ow).
            unsafe {
                for b in 0..blocks {
                    let a = _mm256_loadu_si256(r0.as_ptr().add(32 * b).cast());
                    let c = _mm256_loadu_si256(r1.as_ptr().add(32 * b).cast());
                    let v = _mm256_max_epi8(a, c);
                    // Sign-extend even/odd bytes to i16 and take the pair max.
                    let evens = _mm256_srai_epi16::<8>(_mm256_slli_epi16::<8>(v));
                    let odds = _mm256_srai_epi16::<8>(v);
                    let pairs = _mm256_max_epi16(evens, odds);
                    // Pack the 16 i16 maxima back to i8 (all within range) and
                    // compact the two 128-bit lanes.
                    let packed = _mm256_packs_epi16(pairs, pairs);
                    let compact = _mm256_permute4x64_epi64::<0b00_00_10_00>(packed);
                    _mm_storeu_si128(
                        dst_row.as_mut_ptr().add(16 * b).cast(),
                        _mm256_castsi256_si128(compact),
                    );
                }
            }
            for ox in blocks * 16..ow {
                let mut best = i8::MIN;
                best = best.max(r0[2 * ox]).max(r0[2 * ox + 1]);
                best = best.max(r1[2 * ox]).max(r1[2 * ox + 1]);
                dst_row[ox] = best;
            }
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn relu_slice_avx2(values: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let chunks = values.len() / 8;
        // SAFETY: chunk c covers [8c, 8c+8) with 8c+8 <= len.
        unsafe {
            for c in 0..chunks {
                let p = values.as_mut_ptr().add(c * 8);
                _mm256_storeu_ps(p, _mm256_max_ps(_mm256_loadu_ps(p), zero));
            }
        }
        for v in &mut values[chunks * 8..] {
            *v = if *v > 0.0 { *v } else { 0.0 };
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn relu_codes_floor_avx2(codes: &mut [i8], floor: i8) {
        let vfloor = _mm256_set1_epi8(floor);
        let chunks = codes.len() / 32;
        // SAFETY: chunk c covers [32c, 32c+32) with 32c+32 <= len.
        unsafe {
            for c in 0..chunks {
                let p = codes.as_mut_ptr().add(c * 32).cast::<__m256i>();
                _mm256_storeu_si256(p, _mm256_max_epi8(_mm256_loadu_si256(p), vfloor));
            }
        }
        for c in &mut codes[chunks * 32..] {
            *c = (*c).max(floor);
        }
    }

    /// Vector exponential: the same constant chain as [`exp_m`], one rounded
    /// operation per step (multiplies and adds kept separate — no FMA), so
    /// each lane reproduces the scalar kernel bit for bit.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn exp_ps(x: __m256) -> __m256 {
        let x0 = x;
        // min/max with x as the *second* operand: NaN passes through, exactly
        // like the scalar `if x > HI { HI } else { x }` chain.
        let x = _mm256_min_ps(_mm256_set1_ps(expc::HI), x);
        let x = _mm256_max_ps(_mm256_set1_ps(expc::LO), x);
        let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_ps(x, _mm256_set1_ps(expc::LOG2E)),
        );
        let r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(expc::LN2_HI)));
        let r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(expc::LN2_LO)));
        let r2 = _mm256_mul_ps(r, r);
        let mut p = _mm256_set1_ps(expc::P0);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(expc::P1));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(expc::P2));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(expc::P3));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(expc::P4));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(expc::P5));
        let y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(p, r2), r), _mm256_set1_ps(1.0));
        // 2^n via the exponent field. NaN lanes convert to i32::MIN, whose
        // scale is garbage — but `y` is NaN there and NaN·anything = NaN with
        // the first operand's payload, matching the scalar path.
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(127),
        )));
        let result = _mm256_mul_ps(y, scale);
        // Canonicalize NaN lanes like the scalar kernel (payload propagation
        // through the arithmetic above is operand-order dependent).
        let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x0, x0);
        _mm256_blendv_ps(result, _mm256_set1_ps(f32::NAN), nan)
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported; lengths are validated by the
    /// dispatching wrapper.
    #[target_feature(enable = "avx2")]
    unsafe fn softmax_avx2(logits: &[f32], out: &mut [f32]) {
        let chunks = logits.len() / SM_LANES;
        // SAFETY: every pointer access below covers [8c, 8c+8) with
        // 8c+8 <= len for both slices (identical lengths, checked by the
        // wrapper).
        unsafe {
            let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
            for c in 0..chunks {
                let v = _mm256_loadu_ps(logits.as_ptr().add(c * SM_LANES));
                vmax = _mm256_max_ps(v, vmax);
            }
            let mut lanes = [f32::NEG_INFINITY; SM_LANES];
            _mm256_storeu_ps(lanes.as_mut_ptr(), vmax);
            let max = finish_max(lanes, &logits[chunks * SM_LANES..]);
            let vm = _mm256_set1_ps(max);
            for c in 0..chunks {
                let v = _mm256_loadu_ps(logits.as_ptr().add(c * SM_LANES));
                _mm256_storeu_ps(out.as_mut_ptr().add(c * SM_LANES), exp_ps(_mm256_sub_ps(v, vm)));
            }
            for (o, &x) in out[chunks * SM_LANES..].iter_mut().zip(&logits[chunks * SM_LANES..]) {
                *o = exp_m(x - max);
            }
            let mut vsum = _mm256_setzero_ps();
            for c in 0..chunks {
                vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(out.as_ptr().add(c * SM_LANES)));
            }
            let mut sums = [0.0f32; SM_LANES];
            _mm256_storeu_ps(sums.as_mut_ptr(), vsum);
            let sum = finish_sum(sums, &out[chunks * SM_LANES..]);
            let inv = 1.0 / sum;
            let vinv = _mm256_set1_ps(inv);
            for c in 0..chunks {
                let p = out.as_mut_ptr().add(c * SM_LANES);
                _mm256_storeu_ps(p, _mm256_mul_ps(_mm256_loadu_ps(p), vinv));
            }
            for o in &mut out[chunks * SM_LANES..] {
                *o *= inv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tensor element-wise methods
// ---------------------------------------------------------------------------

impl Tensor {
    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Element-wise difference of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Element-wise (Hadamard) product of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// Adds `other * scale` to `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Applies the rectified linear unit (`x` if `x > 0`, else `0.0` — the
    /// same select the dispatched [`relu_slice`] kernel uses on every tier).
    pub fn relu(&self) -> Tensor {
        self.map(|x| if x > 0.0 { x } else { 0.0 })
    }

    /// Applies the hyperbolic tangent element-wise.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Applies the logistic sigmoid element-wise.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that shapes match; public callers go through the checked
    /// arithmetic methods above.
    pub(crate) fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        debug_assert_eq!(self.shape(), other.shape());
        let data = self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(data, self.dims()).expect("zip_with preserves shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_mul_elementwise() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = t(&[1.0, 2.0]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        let g = t(&[2.0, -4.0]);
        a.add_scaled_inplace(&g, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn activations_behave() {
        let x = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 2.0]);
        let s = x.sigmoid();
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        let c = x.clamp(-0.5, 1.0);
        assert_eq!(c.as_slice(), &[-0.5, 0.0, 1.0]);
        let th = x.tanh();
        assert!(th.as_slice()[2] > 0.9 && th.as_slice()[2] < 1.0);
    }

    #[test]
    fn scalar_ops() {
        let x = t(&[1.0, 2.0]);
        assert_eq!(x.scale(3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!(x.add_scalar(-1.0).as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn pool_kernel_picks_window_maxima() {
        #[rustfmt::skip]
        let src = [
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
            -1.0, -2.0, 0.0, 1.0,
            -3.0, -4.0, 2.0, 3.0f32,
        ];
        let mut out = [0.0f32; 4];
        max_pool_planes_into(&src, 1, 4, 4, 2, &mut out);
        assert_eq!(out, [4.0, 8.0, -1.0, 3.0]);
        let codes: Vec<i8> = src.iter().map(|&v| v as i8).collect();
        let mut cout = [0i8; 4];
        max_pool_planes_i8_into(&codes, 1, 4, 4, 2, &mut cout);
        assert_eq!(cout, [4, 8, -1, 3]);
    }

    #[test]
    fn pool_kernel_size_one_is_identity_and_nan_is_ignored() {
        let src = [1.0, f32::NAN, -2.0, 0.5];
        let mut out = [0.0f32; 4];
        max_pool_planes_into(&src, 1, 2, 2, 1, &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[2], -2.0);
        // A NaN window element never beats the accumulator; a pure-NaN fold
        // yields the -inf initialiser.
        let mut pooled = [0.0f32; 1];
        max_pool_planes_into(&[f32::NAN, 1.0, 2.0, f32::NAN], 1, 2, 2, 2, &mut pooled);
        assert_eq!(pooled[0], 2.0);
        max_pool_planes_into(&[f32::NAN; 4], 1, 2, 2, 2, &mut pooled);
        assert_eq!(pooled[0], f32::NEG_INFINITY);
    }

    #[test]
    fn relu_kernels_clamp_from_below() {
        let mut v = vec![-1.0f32, 0.0, 2.5, -0.0, f32::NAN, 7.0, -3.0, 1.0, -0.25];
        relu_slice(&mut v);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[2], 2.5);
        assert_eq!(v[3].to_bits(), 0, "-0.0 maps to +0.0");
        assert_eq!(v[4], 0.0, "NaN maps to 0.0 (vmaxps semantics)");
        assert_eq!(v[8], 0.0);
        let mut codes = vec![-7i8, -3, 0, 5, 127, -128];
        relu_codes_floor(&mut codes, -3);
        assert_eq!(codes, vec![-3, -3, 0, 5, 127, -3]);
    }

    #[test]
    fn softmax_kernel_normalises_and_is_stable() {
        let logits: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let mut probs = vec![0.0f32; logits.len()];
        softmax_slice_into(&logits, &mut probs);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "sum {sum}");
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        // Shift invariance (stability): huge logits do not overflow. The
        // quarter-step logits and the power-of-two shift are all exactly
        // representable, so the shifted differences are bit-identical.
        let exact: Vec<f32> = (0..37).map(|i| (i % 13) as f32 * 0.25 - 1.5).collect();
        let shifted: Vec<f32> = exact.iter().map(|x| x + 512.0).collect();
        let (mut p1, mut p2) = (vec![0.0f32; exact.len()], vec![0.0f32; exact.len()]);
        softmax_slice_into(&exact, &mut p1);
        softmax_slice_into(&shifted, &mut p2);
        assert_eq!(p1, p2, "softmax must be shift-invariant for representable shifts");
        // Two equal logits split evenly.
        let mut half = [0.0f32; 2];
        softmax_slice_into(&[3.0, 3.0], &mut half);
        assert_eq!(half[0], 0.5);
        assert_eq!(half[1], 0.5);
    }

    #[test]
    fn shared_exponential_tracks_libm() {
        for i in -500..=500 {
            let x = i as f32 * 0.17;
            let got = exp_m(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 3e-7, "exp({x}): {got} vs {want} (rel {rel})");
        }
        assert_eq!(exp_m(0.0), 1.0);
        // The input clamp floors very negative arguments at exp(-87.34),
        // the smallest normal magnitude the kernel emits.
        assert!(exp_m(f32::NEG_INFINITY) < 1.3e-38);
    }
}
