//! Property-based tests of the tensor substrate.

use ie_tensor::{im2col, Conv2dGeometry, Tensor};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).expect("length matches shape"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matrix multiplication with the identity is a no-op (up to float exactness,
    /// which holds because identity rows have a single 1).
    #[test]
    fn matmul_identity_is_neutral(m in arb_matrix(6)) {
        let n = m.dims()[1];
        let result = m.matmul(&Tensor::eye(n)).expect("shapes are compatible");
        prop_assert_eq!(result, m);
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ for arbitrary compatible matrices.
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(5), b in arb_matrix(5)) {
        // Make the shapes compatible by construction: b reshaped to [a_cols, x].
        let k = a.dims()[1];
        let total = b.len();
        let cols = (total / k).max(1);
        let b = Tensor::from_vec(
            b.as_slice().iter().copied().chain(std::iter::repeat(0.0)).take(k * cols).collect(),
            &[k, cols],
        ).expect("constructed shape is consistent");
        let left = a.matmul(&b).expect("compatible").transpose().expect("rank 2");
        let right = b.transpose().expect("rank 2").matmul(&a.transpose().expect("rank 2")).expect("compatible");
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    /// Element-wise addition commutes and subtraction is its inverse.
    #[test]
    fn add_commutes_and_sub_inverts(a in arb_matrix(6)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).expect("same shape");
        let ba = b.add(&a).expect("same shape");
        prop_assert_eq!(ab.clone(), ba);
        let back = ab.sub(&b).expect("same shape");
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Reshape preserves the sum and the element count.
    #[test]
    fn reshape_preserves_contents(a in arb_matrix(6)) {
        let flat = a.reshape(&[a.len()]).expect("same element count");
        prop_assert_eq!(flat.len(), a.len());
        prop_assert!((flat.sum() - a.sum()).abs() < 1e-4);
    }

    /// ReLU output is non-negative and never exceeds the input.
    #[test]
    fn relu_bounds(a in arb_matrix(6)) {
        let r = a.relu();
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            prop_assert!(*x >= 0.0);
            prop_assert!(*x >= *y || *x == 0.0);
        }
    }

    /// im2col of a constant image yields columns whose sums never exceed the
    /// kernel area times the constant (padding only removes mass).
    #[test]
    fn im2col_column_mass_is_bounded(c in 1usize..3, hw in 3usize..7, k in 1usize..4, pad in 0usize..2) {
        prop_assume!(hw + 2 * pad >= k);
        // With padding >= kernel a window can lie entirely in the zero padding,
        // so the "every patch overlaps a pixel" part only holds for pad < k.
        prop_assume!(pad < k);
        let geom = Conv2dGeometry { in_channels: c, in_h: hw, in_w: hw, kernel: k, stride: 1, padding: pad };
        let image = Tensor::full(&[c, hw, hw], 1.0);
        let cols = im2col(&image, &geom).expect("valid geometry");
        let rows = cols.dims()[0];
        let ncols = cols.dims()[1];
        prop_assert_eq!(rows, c * k * k);
        for col in 0..ncols {
            let sum: f32 = (0..rows).map(|r| cols.get(&[r, col]).expect("in range")).sum();
            prop_assert!(sum <= (c * k * k) as f32 + 1e-5);
            prop_assert!(sum >= 1.0 - 1e-5, "every patch overlaps at least one pixel");
        }
    }
}
