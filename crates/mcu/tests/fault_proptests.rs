//! Property tests over random fault schedules.
//!
//! Whatever the schedule, a run with enough harvestable energy must complete,
//! its output digest must be bit-identical to the fault-free run, the energy
//! ledger `consumed == fault_free + wasted` must close, and the durable
//! checkpoint generation must never regress — within a run or across
//! sequential inferences sharing one NV store.
//!
//! The `IE_FAULT_SEED` env knob (see README) is mixed into every plan seed so
//! CI can exercise disjoint schedule families without code changes.

use ie_mcu::{
    fault_seed_from_env, task_digest, CostModel, FaultPlan, IntermittentExecutor, McuDevice,
    NonvolatileMemory, TaskGraph, TwoBankCheckpoint,
};
use proptest::prelude::*;

fn executor() -> IntermittentExecutor {
    IntermittentExecutor::new(CostModel::for_device(&McuDevice::msp432()))
}

fn sim() -> ie_energy::HarvestSimulator {
    ie_energy::HarvestSimulator::new(
        Box::new(ie_energy::ConstantTrace::new(2.0, 10_000_000.0)),
        ie_energy::EnergyStorage::new(200.0, 1.0).with_initial_level(100.0),
    )
}

fn env_seed() -> u64 {
    fault_seed_from_env().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_recover_bit_identically(
        seed in 0u64..1_000_000,
        num_tasks in 1usize..12,
        flops in 100_000u64..3_000_000,
        cut_probability in 0.0f64..0.9,
        max_cuts in 0u64..24,
    ) {
        let graph = TaskGraph::split_evenly("prop", flops, num_tasks);
        let exec = executor();

        let mut free_sim = sim();
        let mut free_nv = NonvolatileMemory::new(1024);
        let fault_free = exec.execute(&graph, &mut free_sim, &mut free_nv).unwrap();
        prop_assert!(fault_free.completed);

        let plan = FaultPlan::random(seed ^ env_seed(), cut_probability, max_cuts);
        let mut faulty_sim = sim();
        let mut nv = NonvolatileMemory::new(1024);
        let mut inj = plan.injector();
        let report = exec.execute_with_faults(&graph, &mut faulty_sim, &mut nv, &mut inj).unwrap();

        prop_assert!(report.completed, "random schedules must terminate (max_cuts bound)");
        prop_assert_eq!(report.output_digest, fault_free.output_digest);
        prop_assert_eq!(report.output_digest, task_digest(&graph, graph.len()));
        prop_assert!(inj.cuts_injected() <= max_cuts);
        prop_assert_eq!(report.torn_writes, nv.torn_writes());
        prop_assert!(report.wasted_reexecution_mj >= 0.0);
        let expected = fault_free.energy_consumed_mj + report.wasted_reexecution_mj;
        prop_assert!(
            (report.energy_consumed_mj - expected).abs() < 1e-9,
            "ledger must close: consumed {} vs fault-free {} + wasted {}",
            report.energy_consumed_mj, fault_free.energy_consumed_mj, report.wasted_reexecution_mj
        );
        // Durable generations: one per committed checkpoint, never regressing.
        prop_assert_eq!(report.checkpoint_generation, report.checkpoints);
        prop_assert!(report.checkpoints >= graph.len() as u64);
        let rec = TwoBankCheckpoint::default().recover(&nv).expect("durable record");
        prop_assert!(rec.done);
        prop_assert_eq!(rec.generation, report.checkpoint_generation);
    }

    #[test]
    fn same_plan_reproduces_the_same_report(
        seed in 0u64..1_000_000,
        cut_probability in 0.0f64..0.9,
    ) {
        let graph = TaskGraph::split_evenly("repro", 1_500_000, 7);
        let exec = executor();
        let plan = FaultPlan::random(seed ^ env_seed(), cut_probability, 16);
        let run = || {
            let mut s = sim();
            let mut nv = NonvolatileMemory::new(1024);
            exec.execute_with_faults(&graph, &mut s, &mut nv, &mut plan.injector()).unwrap()
        };
        prop_assert_eq!(run(), run(), "fault injection must be deterministic per seed");
    }

    #[test]
    fn generation_is_monotone_across_sequential_inferences(
        seed in 0u64..1_000_000,
        rounds in 1usize..5,
        cut_probability in 0.0f64..0.7,
    ) {
        let graph = TaskGraph::split_evenly("mono", 1_000_000, 4);
        let exec = executor();
        let mut nv = NonvolatileMemory::new(1024);
        let mut inj = FaultPlan::random(seed ^ env_seed(), cut_probability, 32).injector();
        let mut last = 0u64;
        for round in 0..rounds {
            let mut s = sim();
            let report = exec.execute_with_faults(&graph, &mut s, &mut nv, &mut inj).unwrap();
            prop_assert!(report.completed);
            prop_assert!(
                report.checkpoint_generation > last,
                "round {}: generation {} did not grow past {}",
                round, report.checkpoint_generation, last
            );
            prop_assert_eq!(report.output_digest, task_digest(&graph, graph.len()));
            last = report.checkpoint_generation;
        }
    }
}
