use std::fmt;

/// A tensor shape: the size of each dimension in row-major order.
///
/// Shapes are lightweight value types; the crate only ever materialises
/// contiguous row-major layouts, so strides are derived on demand rather than
/// stored.
///
/// # Example
///
/// ```
/// use ie_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The number of dimensions (rank) of the shape.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements described by the shape.
    ///
    /// The empty shape (rank 0) describes a scalar and has one element.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for the shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// Returns `None` if the index rank does not match or any coordinate is
    /// out of range.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut flat = 0usize;
        for ((&i, &d), stride) in index.iter().zip(&self.dims).zip(self.strides()) {
            if i >= d {
                return None;
            }
            flat += i * stride;
        }
        Some(flat)
    }

    /// Size of dimension `axis`, or `None` when the axis does not exist.
    pub fn dim(&self, axis: usize) -> Option<usize> {
        self.dims.get(axis).copied()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[5]).len(), 5);
        assert_eq!(Shape::new(&[]).len(), 1, "scalar shape has one element");
        assert_eq!(Shape::new(&[3, 0, 2]).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn offset_maps_last_axis_fastest() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), Some(0));
        assert_eq!(s.offset(&[0, 2]), Some(2));
        assert_eq!(s.offset(&[1, 0]), Some(3));
        assert_eq!(s.offset(&[1, 2]), Some(5));
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[2, 0]), None, "row out of range");
        assert_eq!(s.offset(&[0, 3]), None, "col out of range");
        assert_eq!(s.offset(&[0]), None, "wrong rank");
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::new(&[1, 28, 28]).to_string(), "[1, 28, 28]");
    }

    #[test]
    fn conversions_from_slices_and_vecs() {
        let a: Shape = (&[2usize, 2][..]).into();
        let b: Shape = vec![2usize, 2].into();
        assert_eq!(a, b);
    }
}
