use crate::{NnError, Result};
use ie_tensor::{max_pool_planes_i8_into, max_pool_planes_into, Tensor};

/// Non-overlapping 2-D max pooling over `[C, H, W]` inputs.
///
/// The pool size equals the stride (the common LeNet configuration). Input
/// height and width must be divisible by the pool size; the architecture spec
/// guarantees this for the paper's backbone.
///
/// # Example
///
/// ```
/// use ie_nn::MaxPool2d;
/// use ie_tensor::Tensor;
///
/// let pool = MaxPool2d::new(2);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
/// let y = pool.forward(&x)?;
/// assert_eq!(y.as_slice(), &[4.0]);
/// # Ok::<(), ie_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    size: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window (and stride).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be non-zero");
        MaxPool2d { size }
    }

    /// The pooling window size.
    pub fn size(&self) -> usize {
        self.size
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        if input.shape().rank() != 3 {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d".into(),
                expected: vec![0, 0, 0],
                actual: input.dims().to_vec(),
            });
        }
        let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
        if h % self.size != 0 || w % self.size != 0 {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d".into(),
                expected: vec![c, h / self.size * self.size, w / self.size * self.size],
                actual: input.dims().to_vec(),
            });
        }
        Ok((c, h, w))
    }

    /// Allocation-free forward pass over a flat `[c, h, w]` input slice,
    /// writing the pooled `[c, h/size, w/size]` activation into `out`.
    /// Bit-identical to [`Self::forward`]. The window scan runs through the
    /// dispatched [`ie_tensor::max_pool_planes_into`] kernel (AVX2 vectorized
    /// for the 2×2 window; bit-identical on every ISA tier).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when the spatial size is not
    /// divisible by the pool size or a buffer length does not match the
    /// dimensions.
    pub fn forward_slice_into(
        &self,
        input: &[f32],
        dims: [usize; 3],
        out: &mut [f32],
    ) -> Result<()> {
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        if input.len() != c * h * w || h % self.size != 0 || w % self.size != 0 {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d".into(),
                expected: vec![c, h / self.size * self.size, w / self.size * self.size],
                actual: vec![input.len()],
            });
        }
        let (oh, ow) = (h / self.size, w / self.size);
        if out.len() != c * oh * ow {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d(out)".into(),
                expected: vec![c, oh, ow],
                actual: vec![out.len()],
            });
        }
        max_pool_planes_into(input, c, h, w, self.size, out);
        Ok(())
    }

    /// Batched counterpart of [`Self::forward_slice_into`] over the
    /// channel-major wide layout: `input` is `[c, batch, h, w]`, `out` is
    /// `[c, batch, h/size, w/size]`. Each `(channel, sample)` plane is pooled
    /// with the same window scan as the single-sample kernel, so every
    /// sample's result is bit-identical to pooling it alone.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] under the same conditions as
    /// [`Self::forward_slice_into`], with lengths scaled by `batch`.
    pub fn forward_batch_slice_into(
        &self,
        input: &[f32],
        dims: [usize; 3],
        batch: usize,
        out: &mut [f32],
    ) -> Result<()> {
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        if input.len() != c * batch * h * w || h % self.size != 0 || w % self.size != 0 {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d(batch)".into(),
                expected: vec![c, h / self.size * self.size, w / self.size * self.size],
                actual: vec![input.len()],
            });
        }
        let (oh, ow) = (h / self.size, w / self.size);
        if out.len() != c * batch * oh * ow {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d(batch out)".into(),
                expected: vec![c * batch * oh * ow],
                actual: vec![out.len()],
            });
        }
        max_pool_planes_into(input, c * batch, h, w, self.size, out);
        Ok(())
    }

    /// [`Self::forward_slice_into`] over quantized activation codes.
    ///
    /// Quantization is monotone, so the maximum of the codes is the code of
    /// the maximum: pooling in the code domain is exactly equivalent to
    /// pooling the real values and quantizing afterwards, which is what lets
    /// chained quantized layers keep their activations as `i8` across pools.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] under the same conditions as
    /// [`Self::forward_slice_into`].
    pub fn forward_codes_into(&self, input: &[i8], dims: [usize; 3], out: &mut [i8]) -> Result<()> {
        self.forward_batch_codes_into(input, dims, 1, out)
    }

    /// Batched counterpart of [`Self::forward_codes_into`] over the
    /// channel-major wide layout (`[c, batch, h, w]` codes in, pooled codes
    /// out), mirroring [`Self::forward_batch_slice_into`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] under the same conditions as
    /// [`Self::forward_batch_slice_into`].
    pub fn forward_batch_codes_into(
        &self,
        input: &[i8],
        dims: [usize; 3],
        batch: usize,
        out: &mut [i8],
    ) -> Result<()> {
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        if input.len() != c * batch * h * w || h % self.size != 0 || w % self.size != 0 {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d(codes)".into(),
                expected: vec![c, h / self.size * self.size, w / self.size * self.size],
                actual: vec![input.len()],
            });
        }
        let (oh, ow) = (h / self.size, w / self.size);
        if out.len() != c * batch * oh * ow {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d(codes out)".into(),
                expected: vec![c * batch * oh * ow],
                actual: vec![out.len()],
            });
        }
        max_pool_planes_i8_into(input, c * batch, h, w, self.size, out);
        Ok(())
    }

    /// Forward pass.
    ///
    /// Allocating wrapper over [`Self::forward_slice_into`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when the input is not rank 3 or
    /// its spatial size is not divisible by the pool size.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let (c, h, w) = self.check_input(input)?;
        let (oh, ow) = (h / self.size, w / self.size);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        self.forward_slice_into(input.as_slice(), [c, h, w], out.as_mut_slice())?;
        Ok(out)
    }

    /// Backward pass: routes each output gradient to the input position that
    /// achieved the maximum (first position on ties).
    ///
    /// # Errors
    ///
    /// Returns a shape error when `input` or `grad_output` have unexpected
    /// shapes.
    pub fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        let (c, h, w) = self.check_input(input)?;
        let (oh, ow) = (h / self.size, w / self.size);
        if grad_output.dims() != [c, oh, ow] {
            return Err(NnError::InputShapeMismatch {
                layer: "maxpool2d(backward)".into(),
                expected: vec![c, oh, ow],
                actual: grad_output.dims().to_vec(),
            });
        }
        let mut dx = Tensor::zeros(&[c, h, w]);
        let src = input.as_slice();
        let go = grad_output.as_slice();
        {
            let dst = dx.as_mut_slice();
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_pos = (0usize, 0usize);
                        for dy in 0..self.size {
                            for dx_ in 0..self.size {
                                let iy = oy * self.size + dy;
                                let ix = ox * self.size + dx_;
                                let v = src[(ch * h + iy) * w + ix];
                                if v > best {
                                    best = v;
                                    best_pos = (iy, ix);
                                }
                            }
                        }
                        dst[(ch * h + best_pos.0) * w + best_pos.1] += go[(ch * oh + oy) * ow + ox];
                    }
                }
            }
        }
        Ok(dx)
    }

    /// Output shape for a `[c, h, w]` input.
    pub fn output_dims(&self, input_dims: &[usize]) -> [usize; 3] {
        [input_dims[0], input_dims[1] / self.size, input_dims[2] / self.size]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_window_maxima() {
        let pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, 3.0, 4.0, 7.0, 8.0, -1.0, -2.0, 0.0, 1.0, -3.0, -4.0, 2.0, 3.0,
            ],
            &[1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 8.0, -1.0, 3.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let go = Tensor::from_vec(vec![10.0], &[1, 1, 1]).unwrap();
        let dx = pool.backward(&x, &go).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn rejects_non_divisible_inputs() {
        let pool = MaxPool2d::new(2);
        assert!(pool.forward(&Tensor::zeros(&[1, 3, 4])).is_err());
        assert!(pool.forward(&Tensor::zeros(&[3, 4])).is_err());
    }

    #[test]
    #[should_panic(expected = "pool size must be non-zero")]
    fn zero_pool_size_panics() {
        let _ = MaxPool2d::new(0);
    }

    #[test]
    fn code_pooling_commutes_with_quantization() {
        // max over codes == code of the max (monotone map).
        let pool = MaxPool2d::new(2);
        let codes: Vec<i8> = vec![-8, 3, 127, -128, 0, 5, -1, 2, 9, 9, 9, 9, 1, 2, 3, 4];
        let mut out = vec![0i8; 4];
        pool.forward_codes_into(&codes, [1, 4, 4], &mut out).unwrap();
        let floats: Vec<f32> = codes.iter().map(|&c| f32::from(c)).collect();
        let mut out_f = vec![0.0f32; 4];
        pool.forward_slice_into(&floats, [1, 4, 4], &mut out_f).unwrap();
        assert_eq!(out.iter().map(|&c| f32::from(c)).collect::<Vec<_>>(), out_f);
        // Length validation.
        let mut wrong = vec![0i8; 3];
        assert!(pool.forward_codes_into(&codes, [1, 4, 4], &mut wrong).is_err());
    }

    #[test]
    fn output_dims_halve_spatial_size() {
        let pool = MaxPool2d::new(2);
        assert_eq!(pool.output_dims(&[16, 8, 8]), [16, 4, 4]);
    }
}
