//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of proptest the workspace's property tests use: the `proptest!`
//! macro, range/tuple/`collection::vec`/`option::of`/`bool::ANY` strategies,
//! `prop_map`/`prop_flat_map` combinators and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case reports its inputs (via the panic message of
//!   the underlying assert) but is not minimised;
//! - deterministic seeding: each test derives its RNG seed from the test name
//!   (override with `PROPTEST_SEED`), so reruns are bit-identical — which is
//!   exactly what a deterministic tier-1 gate wants.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving value generation inside `proptest!` runners.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Seed from the test's name so every run of the suite generates the same
    /// cases (set `PROPTEST_SEED` to explore a different stream).
    pub fn for_test(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0u64);
        // FNV-1a over the test name, mixed with the optional external seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base.wrapping_mul(0x100_0000_01b3);
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe driver used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(&mut rng.0, self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(&mut rng.0, self.clone())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    /// `proptest::collection::vec(element_strategy, size_or_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy { element, size: Box::new(size) }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen_bool(&mut rng.0, 0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rand::Rng::gen_bool(&mut rng.0, 0.5)
        }
    }
}

pub mod num {
    macro_rules! any_mod {
        ($($m:ident / $t:ty),*) => {$(
            pub mod $m {
                pub struct Any;
                pub const ANY: Any = Any;
                impl super::super::Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut super::super::TestRng) -> $t {
                        rand::Rng::gen(&mut rng.0)
                    }
                }
            }
        )*};
    }
    any_mod!(u8 / u8, u16 / u16, u32 / u32, u64 / u64, usize / usize, i32 / i32, i64 / i64);
}

/// `any::<T>()` for the handful of primitive types the suite needs.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct StdArb<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Strategy for StdArb<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen(&mut rng.0)
            }
        }
        impl Arbitrary for $t {
            type Strategy = StdArb<$t>;
            fn arbitrary() -> StdArb<$t> {
                StdArb(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Expands to `continue`, so it must appear directly in a `proptest!` test
/// body (the only place real proptest allows it to run anyway).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_compose(xs in crate::collection::vec(0usize..10, 1..20), flip in crate::bool::ANY) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = flip;
        }

        #[test]
        fn flat_map_threads_dependent_sizes(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))) {
            prop_assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = (0u64..1000, -1.0f32..1.0);
        for _ in 0..100 {
            let (i1, f1) = s.generate(&mut a);
            let (i2, f2) = s.generate(&mut b);
            assert_eq!(i1, i2);
            assert_eq!(f1.to_bits(), f2.to_bits());
        }
    }
}
