use crate::{Conv2d, Dense, MaxPool2d, Relu, Result};
use ie_tensor::Tensor;

/// Flattens a multi-dimensional activation into a vector.
///
/// The backward pass simply reshapes the incoming gradient back to the shape
/// of the saved input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flatten;

impl Flatten {
    /// Creates a new flatten layer.
    pub fn new() -> Self {
        Flatten
    }

    /// Forward pass: reshape to a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` keeps the layer signature uniform.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.reshape(&[input.len()])?)
    }

    /// Backward pass: reshape the gradient to the input's shape.
    ///
    /// # Errors
    ///
    /// Returns an error when the gradient has a different element count than
    /// the input.
    pub fn backward(&self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        Ok(grad_output.reshape(input.dims())?)
    }
}

/// A single network layer.
///
/// Using an enum rather than trait objects keeps layers cloneable, comparable
/// and — most importantly for this reproduction — lets the compression crate
/// pattern-match on convolution and dense layers to apply channel pruning and
/// quantization directly to their weights.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Dense(Dense),
    /// ReLU activation.
    Relu(Relu),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Flatten to a vector.
    Flatten(Flatten),
}

impl Layer {
    /// Forward pass through the layer.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped layer's shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d(l) => l.forward(input),
            Layer::Dense(l) => l.forward(input),
            Layer::Relu(l) => l.forward(input),
            Layer::MaxPool2d(l) => l.forward(input),
            Layer::Flatten(l) => l.forward(input),
        }
    }

    /// Backward pass: `input` must be the tensor the forward pass received.
    ///
    /// Parameterised layers accumulate their gradients internally and return
    /// the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped layer's shape errors.
    pub fn backward(&mut self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d(l) => l.backward(input, grad_output),
            Layer::Dense(l) => l.backward(input, grad_output),
            Layer::Relu(l) => l.backward(input, grad_output),
            Layer::MaxPool2d(l) => l.backward(input, grad_output),
            Layer::Flatten(l) => l.backward(input, grad_output),
        }
    }

    /// Number of trainable parameters in the layer.
    pub fn parameter_count(&self) -> usize {
        match self {
            Layer::Conv2d(l) => l.parameter_count(),
            Layer::Dense(l) => l.parameter_count(),
            _ => 0,
        }
    }

    /// Returns `true` when the layer has trainable parameters.
    pub fn is_parameterised(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Dense(_))
    }

    /// Applies accumulated gradients with learning rate `lr` and clears them.
    pub fn apply_gradients(&mut self, lr: f32) {
        match self {
            Layer::Conv2d(l) => l.apply_gradients(lr),
            Layer::Dense(l) => l.apply_gradients(lr),
            _ => {}
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        match self {
            Layer::Conv2d(l) => l.zero_grad(),
            Layer::Dense(l) => l.zero_grad(),
            _ => {}
        }
    }
}

impl From<Conv2d> for Layer {
    fn from(l: Conv2d) -> Self {
        Layer::Conv2d(l)
    }
}

impl From<Dense> for Layer {
    fn from(l: Dense) -> Self {
        Layer::Dense(l)
    }
}

impl From<Relu> for Layer {
    fn from(l: Relu) -> Self {
        Layer::Relu(l)
    }
}

impl From<MaxPool2d> for Layer {
    fn from(l: MaxPool2d) -> Self {
        Layer::MaxPool2d(l)
    }
}

impl From<Flatten> for Layer {
    fn from(l: Flatten) -> Self {
        Layer::Flatten(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flatten_roundtrips_shapes() {
        let f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[24]);
        let dx = f.backward(&x, &Tensor::ones(&[24])).unwrap();
        assert_eq!(dx.dims(), &[2, 3, 4]);
    }

    #[test]
    fn layer_enum_dispatches_forward() {
        let mut rng = StdRng::seed_from_u64(0);
        let layers: Vec<Layer> = vec![
            Conv2d::new(&mut rng, 1, 2, 3, 1, 1, 4, 4).into(),
            Relu::new().into(),
            MaxPool2d::new(2).into(),
            Flatten::new().into(),
        ];
        let mut x = Tensor::ones(&[1, 4, 4]);
        for l in &layers {
            x = l.forward(&x).unwrap();
        }
        assert_eq!(x.dims(), &[8]);
    }

    #[test]
    fn parameter_counts_only_for_weighted_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv: Layer = Conv2d::new(&mut rng, 1, 2, 3, 1, 1, 4, 4).into();
        let dense: Layer = Dense::new(&mut rng, 8, 4).into();
        let relu: Layer = Relu::new().into();
        // 2 out-channels x 1 in-channel x 3x3 kernel, plus 2 biases.
        assert_eq!(conv.parameter_count(), 2 * 9 + 2);
        assert_eq!(dense.parameter_count(), 8 * 4 + 4);
        assert_eq!(relu.parameter_count(), 0);
        assert!(conv.is_parameterised());
        assert!(!relu.is_parameterised());
    }
}
