use crate::StateDiscretizer;
use ie_core::{ContinueContext, DeployedModel, EventContext, ExitChoice, ExitPolicy};

/// The static lookup-table policy built during the compression phase:
/// for every discretised energy level the LUT stores the deepest exit whose
/// from-scratch energy cost fits that level. At runtime the table is only
/// read, never updated — this is the baseline the Q-learning adaptation is
/// compared against in Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticLutPolicy {
    discretizer: StateDiscretizer,
    /// Entry per energy bin: `Some(exit)` or `None` when even the cheapest
    /// exit does not fit the bin's representative energy level.
    table: Vec<Option<usize>>,
    capacity_mj: f64,
}

impl StaticLutPolicy {
    /// Builds the LUT for a deployed model and storage capacity.
    pub fn build(model: &DeployedModel, capacity_mj: f64, discretizer: StateDiscretizer) -> Self {
        StaticLutPolicy::from_costs(&model.exit_energies_mj(), capacity_mj, discretizer)
    }

    /// Builds the LUT directly from a per-exit cost table and a capacity in
    /// the same unit. The paper's deployment uses energy costs (mJ); the
    /// serving loop reuses the identical structure over latency costs
    /// (seconds) for budget-based admission control
    /// (see [`crate::LatencyAdmission`]).
    pub fn from_costs(exit_cost: &[f64], capacity: f64, discretizer: StateDiscretizer) -> Self {
        let table = (0..discretizer.energy_bins())
            .map(|bin| {
                let budget = discretizer.energy_bin_midpoint(bin) * capacity;
                exit_cost
                    .iter()
                    .enumerate()
                    .filter(|(_, &cost)| cost <= budget)
                    .map(|(i, _)| i)
                    .next_back()
            })
            .collect();
        StaticLutPolicy { discretizer, table, capacity_mj: capacity }
    }

    /// The lookup table (index = energy bin).
    pub fn table(&self) -> &[Option<usize>] {
        &self.table
    }

    /// The exit the LUT prescribes for a stored-energy fraction.
    pub fn lookup(&self, energy_fraction: f64) -> Option<usize> {
        let bin = ((energy_fraction.clamp(0.0, 1.0) * self.discretizer.energy_bins() as f64)
            as usize)
            .min(self.discretizer.energy_bins() - 1);
        self.table[bin]
    }
}

impl ExitPolicy for StaticLutPolicy {
    fn choose_exit(&mut self, ctx: &EventContext) -> ExitChoice {
        match self.lookup(ctx.energy_fraction()) {
            // The LUT was built from bin mid-points; the actual stored energy
            // may be slightly below the prescribed exit's cost, in which case
            // the simulator would miss the event. Fall back to the deepest
            // affordable exit at or below the prescription.
            Some(exit) => {
                let affordable = (0..=exit).rev().find(|&e| ctx.affordable(e));
                match affordable {
                    Some(e) => ExitChoice::Exit(e),
                    None => ExitChoice::Skip,
                }
            }
            None => {
                if ctx.affordable(0) {
                    ExitChoice::Exit(0)
                } else {
                    ExitChoice::Skip
                }
            }
        }
    }

    fn choose_continue(&mut self, ctx: &ContinueContext) -> bool {
        // Static rule: continue whenever the continuation is affordable.
        ctx.affordable()
    }

    fn name(&self) -> &str {
        "static-lut"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ie_core::ExperimentConfig;

    fn model() -> (ExperimentConfig, DeployedModel) {
        let config = ExperimentConfig::small_test();
        let model = DeployedModel::uncompressed_reference(&config).unwrap();
        (config, model)
    }

    #[test]
    fn lut_is_monotone_in_energy() {
        let (config, model) = model();
        let lut = StaticLutPolicy::build(
            &model,
            config.storage_capacity_mj,
            StateDiscretizer::paper_default(),
        );
        let entries = lut.table();
        let mut last = -1isize;
        for e in entries {
            let v = e.map(|x| x as isize).unwrap_or(-1);
            assert!(v >= last, "deeper exits require more energy: {entries:?}");
            last = v;
        }
        // The fullest bin affords the deepest exit for this capacity.
        assert_eq!(entries.last().copied().flatten(), Some(model.num_exits() - 1));
    }

    #[test]
    fn lookup_matches_bins_and_policy_respects_affordability() {
        let (config, model) = model();
        let mut lut = StaticLutPolicy::build(
            &model,
            config.storage_capacity_mj,
            StateDiscretizer::paper_default(),
        );
        let ctx = EventContext {
            event_id: 0,
            time_s: 0.0,
            available_energy_mj: config.storage_capacity_mj,
            capacity_mj: config.storage_capacity_mj,
            charging_efficiency: 0.5,
            exit_energy_mj: model.exit_energies_mj(),
            exit_accuracy: model.exit_accuracies(),
        };
        assert_eq!(lut.choose_exit(&ctx), ExitChoice::Exit(model.num_exits() - 1));
        let broke = EventContext { available_energy_mj: 0.0, ..ctx };
        assert_eq!(lut.choose_exit(&broke), ExitChoice::Skip);
        assert_eq!(lut.name(), "static-lut");
    }

    #[test]
    fn continuation_follows_affordability() {
        let (config, model) = model();
        let mut lut = StaticLutPolicy::build(
            &model,
            config.storage_capacity_mj,
            StateDiscretizer::paper_default(),
        );
        let cc = ContinueContext {
            event_id: 0,
            current_exit: 0,
            next_exit: 1,
            confidence: 0.1,
            available_energy_mj: 3.0,
            capacity_mj: 4.0,
            incremental_energy_mj: 1.0,
        };
        assert!(lut.choose_continue(&cc));
        let broke = ContinueContext { available_energy_mj: 0.5, ..cc };
        assert!(!lut.choose_continue(&broke));
    }
}
