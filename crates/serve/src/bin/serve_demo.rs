//! Demo of the open-loop serving path: calibrates per-exit latency costs,
//! builds the static-LUT admission table, replays a synthetic request
//! stream through the dynamic batching window and prints the report.
//!
//! Knobs (all environment variables):
//! * `IE_SERVE_THREADS` — worker threads (default: machine parallelism, ≤4)
//! * `IE_SERVE_WINDOW` — max requests per batch (default 8)
//! * `IE_SERVE_DEADLINE_MS` — window deadline in milliseconds (default 2)
//! * `IE_SERVE_REQUESTS` — number of requests to replay (default 512)

use ie_nn::dataset::SyntheticDataset;
use ie_nn::spec::tiny_multi_exit;
use ie_nn::train::BatchPlanPool;
use ie_nn::MultiExitNetwork;
use ie_runtime::{LatencyAdmission, StateDiscretizer};
use ie_serve::{serve_threads, Request, ServeConfig, Server, WindowConfig};
use std::time::Instant;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// Measures each exit's single-input latency (seconds) on the planned path.
fn calibrate(network: &MultiExitNetwork, probe: &ie_tensor::Tensor) -> Vec<f64> {
    let mut plan = network.execution_plan();
    let reps = 20;
    (0..network.num_exits())
        .map(|exit| {
            let t0 = Instant::now();
            for _ in 0..reps {
                network.forward_to_exit_with(&mut plan, probe, exit).expect("calibration pass");
            }
            t0.elapsed().as_secs_f64() / reps as f64
        })
        .collect()
}

fn main() {
    let threads = serve_threads();
    let window = WindowConfig {
        max_batch: env_usize("IE_SERVE_WINDOW", 8),
        deadline_s: env_usize("IE_SERVE_DEADLINE_MS", 2) as f64 / 1000.0,
    };
    let total = env_usize("IE_SERVE_REQUESTS", 512);

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(42);
    let network =
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).expect("demo network");
    let data = SyntheticDataset::generate(3, 8, total, 0.1, 7);
    let samples: Vec<_> = data.train().iter().chain(data.test()).cloned().collect();

    let costs = calibrate(&network, &samples[0].image);
    println!(
        "calibrated per-exit latency (us): {:?}",
        costs.iter().map(|c| (c * 1e6).round()).collect::<Vec<_>>()
    );
    let accuracies = vec![0.6; network.num_exits()];
    let mut admission =
        LatencyAdmission::static_lut(costs.clone(), accuracies, StateDiscretizer::paper_default())
            .expect("admission table");

    // Open-loop stream: fixed inter-arrival, budgets sweeping from below the
    // cheapest exit (shed) to beyond the deepest (full depth).
    let gap_s = costs[0].max(1e-6);
    let max_cost = costs.last().copied().unwrap_or(1e-3);
    let requests: Vec<Request> = (0..total)
        .map(|i| Request {
            id: i as u64,
            arrival_s: i as f64 * gap_s,
            budget_s: (i % 10) as f64 / 6.0 * max_cost,
            input: samples[i % samples.len()].image.clone(),
        })
        .collect();

    let mut pool = BatchPlanPool::new();
    let config = ServeConfig { window, threads };
    let mut server = Server::new(&network, config, &mut pool).expect("server config");
    let outcome = server.replay(&mut admission, &requests).expect("replay");
    for plan in server.into_plans() {
        pool.put(plan);
    }

    let r = &outcome.report;
    println!("policy          : {}", admission.policy_name());
    println!(
        "threads x window: {threads} x {} (deadline {:.1} ms)",
        window.max_batch,
        window.deadline_s * 1e3
    );
    println!("served / shed   : {} / {}", r.served, r.rejected);
    println!("batches (fill)  : {} ({:.2})", r.batches, r.mean_batch_fill);
    println!(
        "queue wait      : p50 {:.3} ms, p99 {:.3} ms",
        r.wait_p50_s * 1e3,
        r.wait_p99_s * 1e3
    );
    println!(
        "latency         : p50 {:.3} ms, p99 {:.3} ms",
        r.latency_p50_s * 1e3,
        r.latency_p99_s * 1e3
    );
    println!("throughput      : {:.0} req/s", r.throughput_rps);
}
