use crate::{BaselineNetwork, Result};
use ie_core::metrics::{EventOutcome, EventRecord, RecoveryStats, SimulationReport};
use ie_core::ExperimentConfig;
use ie_mcu::{CostModel, FaultPlan, IntermittentExecutor, NonvolatileMemory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replays the experiment's event sequence for a single-exit baseline network
/// executed by the SONIC-style intermittent runtime.
///
/// Semantics:
///
/// * when an event arrives while the device is still busy finishing (or
///   waiting out) a previous inference, the event is **missed** — the sensor
///   cannot buffer stale events indefinitely,
/// * otherwise the inference's task graph runs across as many power cycles as
///   needed; if even that starves (no energy for longer than
///   [`BaselineRunner::with_max_wait_s`]) the event is missed,
/// * correctness of a completed inference is sampled from the baseline's
///   published per-inference accuracy.
///
/// The event loop is allocation-free in steady state: the task graph, cost
/// model and executor are built once per run, and the per-task checkpoint
/// writes reuse the non-volatile entry's buffer in place.
#[derive(Debug)]
pub struct BaselineRunner {
    config: ExperimentConfig,
    cost: CostModel,
    max_wait_s: f64,
}

impl BaselineRunner {
    /// Creates a runner over the given experiment environment.
    pub fn new(config: &ExperimentConfig) -> Self {
        BaselineRunner {
            cost: CostModel::for_device(&config.device),
            config: config.clone(),
            max_wait_s: 1_800.0,
        }
    }

    /// Overrides how long one inference may wait for energy before the event
    /// is abandoned.
    pub fn with_max_wait_s(mut self, max_wait_s: f64) -> Self {
        self.max_wait_s = max_wait_s.max(0.0);
        self
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the baseline over the full event sequence.
    ///
    /// # Errors
    ///
    /// Returns configuration or MCU-substrate errors; starvation of individual
    /// events is not an error (they are reported as missed).
    pub fn run(&self, network: &BaselineNetwork) -> Result<SimulationReport> {
        self.config.validate()?;
        let executor =
            IntermittentExecutor::new(self.cost.clone()).with_max_wait_s(self.max_wait_s);
        let graph = network.task_graph();
        let mut sim = self.config.build_harvest_simulator();
        let mut nv = NonvolatileMemory::new(self.config.device.nonvolatile_bytes() as usize);
        let mut rng = StdRng::seed_from_u64(self.config.simulation_seed);
        // One injector for the whole run: the cut schedule spans all events,
        // and because every inference shares `nv`, checkpoint generations are
        // monotone across the entire replay.
        let mut injector = match &self.config.fault {
            Some(f) => FaultPlan::random(f.seed, f.cut_probability, f.max_cuts).injector(),
            None => FaultPlan::None.injector(),
        };
        let mut recovery = RecoveryStats::default();
        let events = self.config.build_events();
        let mut records = Vec::with_capacity(events.len());
        // Time until which the device is still occupied by the previous event.
        let mut busy_until_s = 0.0f64;

        for event in &events {
            if event.time_s < busy_until_s {
                records.push(EventRecord {
                    event_id: event.id,
                    time_s: event.time_s,
                    outcome: EventOutcome::Missed,
                    latency_s: 0.0,
                    energy_mj: 0.0,
                    flops: 0,
                });
                continue;
            }
            sim.advance_to(event.time_s);
            let report = executor.execute_with_faults(&graph, &mut sim, &mut nv, &mut injector)?;
            recovery.absorb(&RecoveryStats {
                recovered_boots: report.recovered_boots,
                torn_writes: report.torn_writes,
                wasted_reexecution_mj: report.wasted_reexecution_mj,
            });
            busy_until_s = sim.now_s();
            if report.completed {
                let correct = rng.gen::<f64>() < network.accuracy();
                records.push(EventRecord {
                    event_id: event.id,
                    time_s: event.time_s,
                    outcome: EventOutcome::Processed { exit: 0, correct, incremental: false },
                    latency_s: report.elapsed_s,
                    energy_mj: report.energy_consumed_mj,
                    flops: network.flops(),
                });
            } else {
                records.push(EventRecord {
                    event_id: event.id,
                    time_s: event.time_s,
                    outcome: EventOutcome::Missed,
                    latency_s: 0.0,
                    energy_mj: report.energy_consumed_mj,
                    flops: 0,
                });
            }
        }

        sim.advance_to(self.config.trace_duration_s);
        let total_harvested = self.config.total_harvestable_mj();
        Ok(SimulationReport::from_records(records, 1, total_harvested).with_recovery(recovery))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ExperimentConfig {
        ExperimentConfig::small_test()
    }

    #[test]
    fn all_events_are_accounted_for() {
        let c = config();
        let report = BaselineRunner::new(&c).run(&BaselineNetwork::lenet_cifar()).unwrap();
        assert_eq!(report.total_events, c.num_events);
        assert_eq!(report.processed_events + report.missed_events, report.total_events);
        assert!(report.correct_events <= report.processed_events);
        assert_eq!(report.exit_counts.len(), 1);
        assert_eq!(report.exit_counts[0], report.processed_events);
    }

    #[test]
    fn runs_are_deterministic() {
        let c = config();
        let a = BaselineRunner::new(&c).run(&BaselineNetwork::sonic_net()).unwrap();
        let b = BaselineRunner::new(&c).run(&BaselineNetwork::sonic_net()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn heavier_networks_process_fewer_events() {
        // SpArSeNet needs ~5.7x the energy of SonicNet per inference, so under
        // the same harvest it must process fewer events and achieve a lower
        // IEpmJ, mirroring Fig. 5.
        let c = config();
        let runner = BaselineRunner::new(&c);
        let sonic = runner.run(&BaselineNetwork::sonic_net()).unwrap();
        let sparse = runner.run(&BaselineNetwork::sparse_net()).unwrap();
        let lenet = runner.run(&BaselineNetwork::lenet_cifar()).unwrap();
        assert!(sparse.processed_events < sonic.processed_events);
        assert!(sonic.processed_events <= lenet.processed_events);
        assert!(sparse.ie_pmj() < sonic.ie_pmj());
        assert!(sonic.ie_pmj() <= lenet.ie_pmj());
    }

    #[test]
    fn fault_injected_replay_is_deterministic_and_reports_recovery() {
        let mut c = config();
        c.fault = Some(ie_core::FaultConfig { seed: 9, cut_probability: 0.6, max_cuts: 48 });
        let a = BaselineRunner::new(&c).run(&BaselineNetwork::sonic_net()).unwrap();
        let b = BaselineRunner::new(&c).run(&BaselineNetwork::sonic_net()).unwrap();
        assert_eq!(a, b, "fault-injected replays must be deterministic");
        assert!(a.recovery.recovered_boots > 0, "p=0.6 across a full replay must cut something");
        assert!(a.recovery.recovered_boots <= 48);
        assert!(a.recovery.wasted_reexecution_mj >= 0.0);
        assert_eq!(a.processed_events + a.missed_events, a.total_events);
    }

    #[test]
    fn fault_free_replay_reports_zero_recovery() {
        let report = BaselineRunner::new(&config()).run(&BaselineNetwork::sonic_net()).unwrap();
        assert_eq!(report.recovery, RecoveryStats::default());
    }

    #[test]
    fn baseline_latency_includes_waiting_for_energy() {
        // With the weak harvest of the paper setup, SonicNet cannot finish an
        // inference in one power cycle, so its mean latency is far above its
        // pure compute time.
        let c = config();
        let report = BaselineRunner::new(&c).run(&BaselineNetwork::sonic_net()).unwrap();
        let compute_s = CostModel::for_device(&c.device).inference_latency_s(2_000_000);
        if report.processed_events > 0 {
            assert!(
                report.mean_latency_s() > compute_s,
                "latency {} should exceed pure compute {compute_s}",
                report.mean_latency_s()
            );
        }
    }
}
