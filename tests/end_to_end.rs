//! Cross-crate integration tests: the full compress → deploy → simulate
//! pipeline, the headline orderings of the paper's evaluation, and the
//! consistency of the metrics across systems.

use intermittent_multiexit::baselines::{BaselineNetwork, BaselineRunner};
use intermittent_multiexit::compress::{
    CalibratedAccuracyModel, CompressionPolicy, PolicyEvaluator,
};
use intermittent_multiexit::core::policies::GreedyAffordablePolicy;
use intermittent_multiexit::core::{DeployedModel, EventLoopSimulator, ExperimentConfig};
use intermittent_multiexit::runtime::{AdaptationConfig, RuntimeAdaptation};
use intermittent_multiexit::search::{best_uniform_policy, CompressionEnv, RewardMode};

/// The reference nonuniform policy used throughout the integration tests
/// (identical in spirit to Fig. 4: keep exit-1 layers wide, prune deep convs,
/// 1-bit for the two large FC layers).
fn nonuniform_policy(config: &ExperimentConfig) -> CompressionPolicy {
    use intermittent_multiexit::compress::LayerPolicy;
    config
        .architecture
        .compressible_layers()
        .iter()
        .map(|l| {
            if l.is_conv {
                if l.first_exit == 0 {
                    LayerPolicy::new(0.5, 8, 8).expect("valid policy")
                } else {
                    LayerPolicy::new(0.25, 4, 8).expect("valid policy")
                }
            } else if l.weight_params > 20_000 {
                LayerPolicy::new(0.35, 1, 8).expect("valid policy")
            } else {
                LayerPolicy::new(0.5, 2, 8).expect("valid policy")
            }
        })
        .collect()
}

#[test]
fn full_precision_model_cannot_be_deployed_but_compressed_model_can() {
    let config = ExperimentConfig::paper_default();
    let reference = DeployedModel::uncompressed_reference(&config).expect("reference builds");
    assert!(reference.check_fits(&config.device).is_err(), "fp32 model must exceed 16 KB");

    let compressed =
        DeployedModel::from_policy(&config, &nonuniform_policy(&config)).expect("policy evaluates");
    assert!(compressed.check_fits(&config.device).is_ok());
    assert!(compressed.total_flops() <= config.flops_target);
}

#[test]
fn nonuniform_compression_dominates_uniform_compression_per_exit() {
    // The Fig. 1(b) claim, end to end: under the same MCU constraints the
    // nonuniform policy keeps every exit more accurate than the best uniform
    // policy the grid search can find.
    let config = ExperimentConfig::paper_default();
    let env = CompressionEnv::new(&config, RewardMode::ExitGuided).expect("env builds");
    let (_, uniform) = best_uniform_policy(&env, 8).expect("uniform search succeeds");
    let nonuniform = env.evaluate(&nonuniform_policy(&config)).expect("evaluates");
    assert!(uniform.feasible && nonuniform.feasible);
    for (exit, (n, u)) in
        nonuniform.profile.exit_accuracy.iter().zip(&uniform.profile.exit_accuracy).enumerate()
    {
        assert!(n >= u, "exit {exit}: nonuniform {n:.3} must be at least uniform {u:.3}");
    }
}

#[test]
fn multi_exit_system_beats_all_single_exit_baselines_on_ie_pmj() {
    // The Fig. 5 headline: the proposed system wins on interesting events per
    // millijoule against SonicNet, SpArSeNet and LeNet-Cifar.
    let config = ExperimentConfig::paper_default();
    let deployed =
        DeployedModel::from_policy(&config, &nonuniform_policy(&config)).expect("deploys");
    let ours = EventLoopSimulator::new(&config)
        .run(&deployed, &mut GreedyAffordablePolicy::new())
        .expect("simulation runs");

    let runner = BaselineRunner::new(&config);
    for baseline in BaselineNetwork::paper_baselines() {
        let report = runner.run(&baseline).expect("baseline runs");
        assert!(
            ours.ie_pmj() > report.ie_pmj(),
            "ours {:.3} IEpmJ must beat {} at {:.3}",
            ours.ie_pmj(),
            baseline.name(),
            report.ie_pmj()
        );
        assert!(
            ours.accuracy_all_events() > report.accuracy_all_events(),
            "ours must also win on all-event accuracy against {}",
            baseline.name()
        );
    }
}

#[test]
fn multi_exit_system_has_the_lowest_per_event_latency() {
    // Section V-D: early exits remove the multi-power-cycle waits of the
    // baselines, so the mean per-event latency must be the smallest.
    let config = ExperimentConfig::paper_default();
    let deployed =
        DeployedModel::from_policy(&config, &nonuniform_policy(&config)).expect("deploys");
    let ours = EventLoopSimulator::new(&config)
        .run(&deployed, &mut GreedyAffordablePolicy::new())
        .expect("simulation runs");
    let runner = BaselineRunner::new(&config);
    for baseline in BaselineNetwork::paper_baselines() {
        let report = runner.run(&baseline).expect("baseline runs");
        if report.processed_events > 0 {
            assert!(
                ours.mean_latency_s() < report.mean_latency_s(),
                "ours {:.1}s must be faster than {} at {:.1}s",
                ours.mean_latency_s(),
                baseline.name(),
                report.mean_latency_s()
            );
        }
    }
}

#[test]
fn runtime_q_learning_is_competitive_with_the_static_lut() {
    // Fig. 7: after a modest number of learning episodes the Q-learning
    // runtime should match or beat the static LUT, and it must process at
    // least as many events.
    let config = ExperimentConfig::paper_default();
    let deployed =
        DeployedModel::from_policy(&config, &nonuniform_policy(&config)).expect("deploys");
    let outcome = RuntimeAdaptation::new(AdaptationConfig { episodes: 10, ..Default::default() })
        .run(&config, &deployed)
        .expect("adaptation runs");
    let best_learned = outcome.learning_curve.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_learned >= outcome.static_accuracy - 0.02,
        "best learned accuracy {best_learned:.3} vs static {:.3}",
        outcome.static_accuracy
    );
    assert!(outcome.final_report.processed_events > 0);
    // Q-learning leans on the cheap first exit at least as much as the LUT
    // does (the Fig. 7(b) shift).
    assert!(
        outcome.final_report.exit_counts[0] >= outcome.static_report.exit_counts[0],
        "q-learning exit-1 usage {:?} vs static {:?}",
        outcome.final_report.exit_counts,
        outcome.static_report.exit_counts
    );
}

#[test]
fn metrics_are_consistent_across_every_system() {
    let config = ExperimentConfig { num_events: 200, ..ExperimentConfig::paper_default() };
    let deployed =
        DeployedModel::from_policy(&config, &nonuniform_policy(&config)).expect("deploys");
    let mut reports = vec![EventLoopSimulator::new(&config)
        .run(&deployed, &mut GreedyAffordablePolicy::new())
        .expect("simulation runs")];
    let runner = BaselineRunner::new(&config);
    for baseline in BaselineNetwork::paper_baselines() {
        reports.push(runner.run(&baseline).expect("baseline runs"));
    }
    for report in &reports {
        assert_eq!(report.total_events, 200);
        assert_eq!(report.processed_events + report.missed_events, report.total_events);
        assert!(report.correct_events <= report.processed_events);
        assert_eq!(report.exit_counts.iter().sum::<usize>(), report.processed_events);
        assert!(report.total_consumed_mj <= report.total_harvested_mj + config.initial_energy_mj);
        // IEpmJ and the all-event accuracy are two views of the same quantity.
        let recomputed =
            report.total_events as f64 / report.total_harvested_mj * report.accuracy_all_events();
        assert!((report.ie_pmj() - recomputed).abs() < 1e-9);
    }
}

#[test]
fn evaluator_and_deployed_model_agree_on_costs() {
    let config = ExperimentConfig::paper_default();
    let evaluator =
        PolicyEvaluator::new(&config.architecture, CalibratedAccuracyModel::for_paper_backbone());
    let policy = nonuniform_policy(&config);
    let profile = evaluator.evaluate(&policy).expect("evaluates");
    let deployed = DeployedModel::new(profile.clone(), config.cost_model());
    for exit in 0..3 {
        let expected_energy = profile.exit_flops[exit] as f64 / 1e6 * 1.5;
        assert!((deployed.exit_energy_mj(exit) - expected_energy).abs() < 1e-9);
        assert_eq!(deployed.exit_flops(exit), profile.exit_flops[exit]);
    }
}
