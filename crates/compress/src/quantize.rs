//! Linear quantization of weights and activations (Eq. 3 of the paper).
//!
//! Weights are quantized symmetrically into `k`-bit signed integers,
//! `w' = clamp(round(w / s), −2^{k−1}, 2^{k−1} − 1) · s`, with the scale `s`
//! chosen to minimise `‖w' − w‖²`. One-bit weights use the two nonzero
//! levels `{−s, +s}` (a true binary quantizer; exact zeros from pruning stay
//! zero). Activations (non-negative after ReLU) use the unsigned range
//! `[0, 2^k − 1]`.
//!
//! For bitwidths up to 16 the round trip goes through the **shared** integer
//! code map [`ie_tensor::weight_code`] — the same function the quantized
//! execution backend uses to pack its i8/i16 GEMM operands — so the
//! fake-quant `f32` values produced here are exactly `code · scale` for the
//! codes the integer engine multiplies with.

use ie_tensor::{weight_code, Tensor};

/// Result of quantizing a tensor: the dequantized values (what the MCU's
/// integer arithmetic effectively computes with) and the scale used.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// The values after the quantize→dequantize round trip.
    pub values: Tensor,
    /// The scale factor `s`.
    pub scale: f32,
    /// Mean-squared quantization error.
    pub mse: f32,
}

fn quantize_with_scale(data: &[f32], scale: f32, lo: f32, hi: f32) -> (Vec<f32>, f32) {
    let mut out = Vec::with_capacity(data.len());
    let mut err = 0.0f32;
    for &w in data {
        let q = (w / scale).round().clamp(lo, hi) * scale;
        err += (q - w) * (q - w);
        out.push(q);
    }
    (out, err / data.len().max(1) as f32)
}

/// Round trip through the shared integer code map — bit-for-bit the values
/// the integer execution backend computes with (`code · scale`).
fn quantize_codes_with_scale(data: &[f32], scale: f32, bits: u8) -> (Vec<f32>, f32) {
    let mut out = Vec::with_capacity(data.len());
    let mut err = 0.0f32;
    for &w in data {
        let q = weight_code(w, scale, bits) as f32 * scale;
        err += (q - w) * (q - w);
        out.push(q);
    }
    (out, err / data.len().max(1) as f32)
}

fn search_scale<F>(data: &[f32], initial: f32, quantize: F) -> (Vec<f32>, f32, f32)
where
    F: Fn(&[f32], f32) -> (Vec<f32>, f32),
{
    let mut best_scale = initial;
    let mut best: Option<(Vec<f32>, f32)> = None;
    // Scan a multiplicative neighbourhood of the max-abs scale; this is the
    // simple 1-D minimisation the paper's "determined by minimising the
    // quantization error" calls for.
    for step in 0..=65 {
        let factor = 0.3 + 0.02 * step as f32;
        let scale = (initial * factor).max(f32::MIN_POSITIVE);
        let (vals, mse) = quantize(data, scale);
        if best.as_ref().map(|(_, m)| mse < *m).unwrap_or(true) {
            best = Some((vals, mse));
            best_scale = scale;
        }
    }
    let (vals, mse) = best.expect("at least one candidate scale was evaluated");
    (vals, best_scale, mse)
}

/// Quantizes a weight tensor to `bits` bits with a symmetric signed range.
///
/// For `bits ≤ 16` the values are `code · scale` for the integer codes of
/// [`ie_tensor::weight_code`] — exactly what the quantized execution backend
/// packs into its i8/i16 GEMM operands — with one bit getting the honest
/// two-level binary quantizer `{−s, +s}` (exact zeros stay zero, so pruning
/// survives). Bitwidths of 32 or more return the tensor unchanged (full
/// precision).
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn quantize_weights(weights: &Tensor, bits: u8) -> Quantized {
    assert!(bits > 0, "bitwidth must be at least 1");
    if bits >= 32 || weights.is_empty() {
        return Quantized { values: weights.clone(), scale: 1.0, mse: 0.0 };
    }
    let data = weights.as_slice();
    let max_abs = data.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
    if max_abs == 0.0 {
        return Quantized { values: weights.clone(), scale: 1.0, mse: 0.0 };
    }
    let hi = (2f32.powi(i32::from(bits) - 1) - 1.0).max(1.0);
    let initial = max_abs / hi;
    let (vals, scale, mse) = if bits <= 16 {
        search_scale(data, initial, |d, s| quantize_codes_with_scale(d, s, bits))
    } else {
        let lo = -2f32.powi(i32::from(bits) - 1);
        search_scale(data, initial, |d, s| quantize_with_scale(d, s, lo, hi))
    };
    Quantized {
        values: Tensor::from_vec(vals, weights.dims()).expect("quantization preserves shape"),
        scale,
        mse,
    }
}

/// Quantizes a non-negative activation tensor to `bits` bits with the unsigned
/// range `[0, 2^k − 1]`.
///
/// Bitwidths of 32 or more return the tensor unchanged.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn quantize_activations(activations: &Tensor, bits: u8) -> Quantized {
    assert!(bits > 0, "bitwidth must be at least 1");
    if bits >= 32 || activations.is_empty() {
        return Quantized { values: activations.clone(), scale: 1.0, mse: 0.0 };
    }
    let data = activations.as_slice();
    let max = data.iter().fold(0.0f32, |m, &v| m.max(v));
    if max <= 0.0 {
        return Quantized { values: activations.clone(), scale: 1.0, mse: 0.0 };
    }
    let hi = 2f32.powi(i32::from(bits)) - 1.0;
    let initial = max / hi;
    let (vals, scale, mse) = search_scale(data, initial, |d, s| quantize_with_scale(d, s, 0.0, hi));
    Quantized {
        values: Tensor::from_vec(vals, activations.dims()).expect("quantization preserves shape"),
        scale,
        mse,
    }
}

/// Size in bytes of `params` weights stored at `bits` bits each.
pub fn storage_bytes(params: u64, bits: u8) -> u64 {
    (params * u64::from(bits)).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn eight_bit_quantization_is_nearly_lossless_for_smooth_weights() {
        let w = t(&(0..100).map(|i| (i as f32 - 50.0) / 50.0).collect::<Vec<_>>());
        let q = quantize_weights(&w, 8);
        assert!(q.mse < 1e-4, "8-bit mse {}", q.mse);
        assert_eq!(q.values.dims(), w.dims());
    }

    #[test]
    fn lower_bitwidths_increase_error_monotonically() {
        let w = t(&(0..64).map(|i| ((i * 37) % 13) as f32 / 13.0 - 0.5).collect::<Vec<_>>());
        let mse: Vec<f32> = [1u8, 2, 4, 8].iter().map(|&b| quantize_weights(&w, b).mse).collect();
        assert!(
            mse[0] >= mse[1] && mse[1] >= mse[2] && mse[2] >= mse[3],
            "mse not monotone: {mse:?}"
        );
        assert!(mse[3] < mse[0]);
    }

    #[test]
    fn one_bit_weights_take_two_levels() {
        let w = t(&[0.9, -0.8, 0.7, -0.6, 0.5]);
        let q = quantize_weights(&w, 1);
        let distinct: std::collections::BTreeSet<i64> =
            q.values.as_slice().iter().map(|v| (v * 1e4).round() as i64).collect();
        assert_eq!(distinct.len(), 2, "1-bit quantization uses exactly two levels: {distinct:?}");
        // The two levels are ±scale: a true binary quantizer, not the
        // three-level {−s, 0, +s} drift of a naive signed clamp.
        assert!(q.values.as_slice().iter().all(|&v| v.abs() == q.scale), "levels are ±scale");
    }

    #[test]
    fn one_bit_quantization_preserves_pruned_zeros() {
        // Channel pruning zeroes whole blocks; a binary quantizer must not
        // resurrect them as +scale.
        let w = t(&[0.0, 0.5, -0.5, 0.0, -0.0]);
        let q = quantize_weights(&w, 1);
        assert_eq!(q.values.as_slice()[0], 0.0);
        assert_eq!(q.values.as_slice()[3], 0.0);
        assert_eq!(q.values.as_slice()[4], 0.0);
        assert!(q.values.as_slice()[1] > 0.0 && q.values.as_slice()[2] < 0.0);
    }

    #[test]
    fn sub_16_bit_round_trips_land_on_integer_code_multiples() {
        // The fake-quant values must be exactly code · scale for the shared
        // integer code map, so the f32 round trip and the integer engine
        // multiply with the same numbers.
        let w = t(&(0..40).map(|i| ((i * 29) % 17) as f32 / 5.0 - 1.5).collect::<Vec<_>>());
        for bits in [2u8, 4, 8, 12, 16] {
            let q = quantize_weights(&w, bits);
            for (&orig, &v) in w.as_slice().iter().zip(q.values.as_slice()) {
                let code = ie_tensor::weight_code(orig, q.scale, bits);
                assert_eq!(v, code as f32 * q.scale, "bits {bits} weight {orig}");
            }
        }
    }

    #[test]
    fn full_precision_and_zero_tensors_pass_through() {
        let w = t(&[0.3, -0.7]);
        let q = quantize_weights(&w, 32);
        assert_eq!(q.values, w);
        assert_eq!(q.mse, 0.0);
        let z = Tensor::zeros(&[8]);
        assert_eq!(quantize_weights(&z, 4).values, z);
        assert_eq!(quantize_activations(&z, 4).values, z);
    }

    #[test]
    fn activation_quantization_stays_non_negative() {
        let a = t(&[0.0, 0.1, 0.5, 2.0, 3.7]);
        let q = quantize_activations(&a, 4);
        assert!(q.values.as_slice().iter().all(|&v| v >= 0.0));
        assert!(q.mse < 0.05);
    }

    #[test]
    fn quantization_error_is_optimised_over_the_scale() {
        // A max-abs outlier makes the naive scale poor; the search must beat it.
        let mut vals: Vec<f32> = (0..200).map(|i| (i as f32 / 200.0) * 0.1).collect();
        vals.push(5.0);
        let w = t(&vals);
        let hi = 2f32.powi(3) - 1.0; // 4-bit signed => hi = 7
        let naive_scale = 5.0 / hi;
        let (_, naive_mse) = super::quantize_with_scale(w.as_slice(), naive_scale, -8.0, 7.0);
        let q = quantize_weights(&w, 4);
        assert!(q.mse <= naive_mse + 1e-9, "search {} vs naive {naive_mse}", q.mse);
    }

    #[test]
    fn storage_bytes_rounds_up() {
        assert_eq!(storage_bytes(8, 8), 8);
        assert_eq!(storage_bytes(9, 1), 2);
        assert_eq!(storage_bytes(177_904, 32), 711_616);
    }

    #[test]
    #[should_panic(expected = "bitwidth must be at least 1")]
    fn zero_bits_panics() {
        let _ = quantize_weights(&t(&[1.0]), 0);
    }
}
