//! Softmax, cross-entropy loss and the entropy-based confidence measure used
//! by the early-exit decision logic (Section IV of the paper).

use crate::{NnError, Result};
use ie_tensor::Tensor;

/// Numerically stable softmax over a logits vector.
///
/// # Errors
///
/// Returns [`NnError::Tensor`] for an empty input.
///
/// # Example
///
/// ```
/// use ie_nn::loss::softmax;
/// use ie_tensor::Tensor;
///
/// let p = softmax(&Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap())?;
/// assert!((p.as_slice()[0] - 0.5).abs() < 1e-6);
/// # Ok::<(), ie_nn::NnError>(())
/// ```
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::zeros(&[logits.len()]);
    softmax_into(logits.as_slice(), out.as_mut_slice())?;
    out.reshape(logits.dims()).map_err(NnError::from)
}

/// Numerically stable softmax written into a caller-provided buffer of the
/// same length. Never allocates; bit-identical to [`softmax`].
///
/// Delegates to the dispatched [`ie_tensor::softmax_slice_into`] kernel:
/// fixed 8-lane max/sum reduction trees and a shared polynomial exponential,
/// bit-identical on every ISA tier.
///
/// # Errors
///
/// Returns [`NnError::Tensor`] for an empty input or a length mismatch.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) -> Result<()> {
    if logits.is_empty() {
        return Err(NnError::Tensor(ie_tensor::TensorError::EmptyTensor));
    }
    if logits.len() != out.len() {
        return Err(NnError::Tensor(ie_tensor::TensorError::DataShapeMismatch {
            data_len: out.len(),
            shape_len: logits.len(),
        }));
    }
    ie_tensor::softmax_slice_into(logits, out);
    Ok(())
}

/// Cross-entropy loss between a logits vector and an integer class label.
///
/// Returns the scalar loss and the gradient with respect to the logits
/// (`softmax(logits) - one_hot(label)`), ready to feed into the backward pass.
///
/// # Errors
///
/// Returns [`NnError::InvalidLabel`] when `label >= logits.len()`.
pub fn cross_entropy(logits: &Tensor, label: usize) -> Result<(f32, Tensor)> {
    if label >= logits.len() {
        return Err(NnError::InvalidLabel { label, classes: logits.len() });
    }
    let probs = softmax(logits)?;
    let p_true = probs.as_slice()[label].max(1e-12);
    let loss = -p_true.ln();
    let mut grad = probs;
    grad.as_mut_slice()[label] -= 1.0;
    Ok((loss, grad))
}

/// Shannon entropy (in nats) of a probability vector.
///
/// Low entropy means the exit is confident about its prediction; the runtime
/// compares the *normalised* entropy against a threshold to decide whether an
/// incremental inference to the next exit is worthwhile.
pub fn entropy(probs: &Tensor) -> f32 {
    entropy_slice(probs.as_slice())
}

/// Slice form of [`entropy`]; never allocates.
pub fn entropy_slice(probs: &[f32]) -> f32 {
    probs.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
}

/// Entropy of `probs` normalised to `[0, 1]` by the maximum possible entropy
/// (`ln(num_classes)`), so thresholds are independent of the class count.
pub fn normalized_entropy(probs: &Tensor) -> f32 {
    normalized_entropy_slice(probs.as_slice())
}

/// Slice form of [`normalized_entropy`]; never allocates.
pub fn normalized_entropy_slice(probs: &[f32]) -> f32 {
    let n = probs.len();
    if n <= 1 {
        return 0.0;
    }
    entropy_slice(probs) / (n as f32).ln()
}

/// Confidence of a probability vector, defined as `1 − normalized_entropy`.
///
/// A uniform distribution has confidence 0; a one-hot distribution has
/// confidence 1.
pub fn confidence(probs: &Tensor) -> f32 {
    confidence_slice(probs.as_slice())
}

/// Slice form of [`confidence`]; never allocates.
pub fn confidence_slice(probs: &[f32]) -> f32 {
    1.0 - normalized_entropy_slice(probs)
}

/// Index of the maximum element (first one on ties), or `None` for an empty
/// slice. Matches `Tensor::argmax` exactly; never allocates.
pub fn argmax_slice(values: &[f32]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    Some(best)
}

/// Classification accuracy of a batch of (probability, label) pairs.
pub fn accuracy(predictions: &[(Tensor, usize)]) -> f32 {
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .filter(|(p, label)| p.argmax().map(|a| a == *label).unwrap_or(false))
        .count();
    correct as f32 / predictions.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&t(&[1.0, 2.0, 3.0])).unwrap();
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.as_slice()[2] > p.as_slice()[1] && p.as_slice()[1] > p.as_slice()[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&t(&[1.0, 2.0])).unwrap();
        let b = softmax(&t(&[1001.0, 1002.0])).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(b.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let (loss_good, _) = cross_entropy(&t(&[10.0, 0.0, 0.0]), 0).unwrap();
        let (loss_bad, _) = cross_entropy(&t(&[10.0, 0.0, 0.0]), 1).unwrap();
        assert!(loss_good < 0.01);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (_, grad) = cross_entropy(&t(&[0.3, -0.2, 1.4]), 2).unwrap();
        assert!(grad.sum().abs() < 1e-6);
        // Gradient at the true class is negative (push logit up).
        assert!(grad.as_slice()[2] < 0.0);
    }

    #[test]
    fn cross_entropy_rejects_out_of_range_label() {
        assert!(cross_entropy(&t(&[0.0, 0.0]), 2).is_err());
    }

    #[test]
    fn entropy_extremes() {
        let uniform = t(&[0.25, 0.25, 0.25, 0.25]);
        let onehot = t(&[1.0, 0.0, 0.0, 0.0]);
        assert!((entropy(&uniform) - (4.0f32).ln()).abs() < 1e-6);
        assert_eq!(entropy(&onehot), 0.0);
        assert!((normalized_entropy(&uniform) - 1.0).abs() < 1e-6);
        assert_eq!(confidence(&onehot), 1.0);
        assert!(confidence(&uniform).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let preds = vec![(t(&[0.9, 0.1]), 0), (t(&[0.2, 0.8]), 1), (t(&[0.6, 0.4]), 1)];
        assert!((accuracy(&preds) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&[]), 0.0);
    }
}
