//! Magnitude-based channel pruning (Eq. 2 of the paper).
//!
//! The importance of input channel `j` is the sum of absolute weights applied
//! to it across all filters, `s_j = Σ_i |W_{i,j}|`; the least important
//! channels are pruned. On the deployed MCU the pruned channels are physically
//! removed; in this simulation we zero them, which produces identical
//! activations while keeping tensor shapes (and therefore the rest of the
//! pipeline) unchanged.

use ie_tensor::Tensor;

/// Computes the importance of every input channel of a convolution filter
/// tensor `[out_channels, in_channels, k, k]` or dense weight matrix
/// `[out_features, in_features]`.
///
/// Returns one non-negative score per input channel. Unsupported ranks return
/// an empty vector.
pub fn channel_importance(weight: &Tensor) -> Vec<f32> {
    let dims = weight.dims();
    match dims.len() {
        4 => {
            let (o, c, k1, k2) = (dims[0], dims[1], dims[2], dims[3]);
            let mut scores = vec![0.0f32; c];
            let data = weight.as_slice();
            for oc in 0..o {
                for (ic, score) in scores.iter_mut().enumerate() {
                    let start = ((oc * c) + ic) * k1 * k2;
                    *score += data[start..start + k1 * k2].iter().map(|w| w.abs()).sum::<f32>();
                }
            }
            scores
        }
        2 => {
            let (o, c) = (dims[0], dims[1]);
            let mut scores = vec![0.0f32; c];
            let data = weight.as_slice();
            for oc in 0..o {
                for (ic, score) in scores.iter_mut().enumerate() {
                    *score += data[oc * c + ic].abs();
                }
            }
            scores
        }
        _ => Vec::new(),
    }
}

/// Selects the indices of the input channels to prune so that
/// `preserve_ratio` of the channels survive. The least important channels are
/// pruned first; at least one channel always survives.
pub fn select_pruned_channels(importance: &[f32], preserve_ratio: f32) -> Vec<usize> {
    let c = importance.len();
    if c == 0 {
        return Vec::new();
    }
    let keep = ((c as f32 * preserve_ratio.clamp(0.0, 1.0)).round() as usize).clamp(1, c);
    let mut order: Vec<usize> = (0..c).collect();
    order.sort_by(|&a, &b| {
        importance[a].partial_cmp(&importance[b]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut pruned: Vec<usize> = order.into_iter().take(c - keep).collect();
    pruned.sort_unstable();
    pruned
}

/// Zeroes the given input channels of a convolution filter tensor
/// `[o, c, k, k]` or dense weight matrix `[o, c]`.
pub fn zero_channels(weight: &mut Tensor, channels: &[usize]) {
    let dims = weight.dims().to_vec();
    match dims.len() {
        4 => {
            let (o, c, k1, k2) = (dims[0], dims[1], dims[2], dims[3]);
            let data = weight.as_mut_slice();
            for oc in 0..o {
                for &ic in channels {
                    if ic >= c {
                        continue;
                    }
                    let start = ((oc * c) + ic) * k1 * k2;
                    for v in &mut data[start..start + k1 * k2] {
                        *v = 0.0;
                    }
                }
            }
        }
        2 => {
            let (o, c) = (dims[0], dims[1]);
            let data = weight.as_mut_slice();
            for oc in 0..o {
                for &ic in channels {
                    if ic < c {
                        data[oc * c + ic] = 0.0;
                    }
                }
            }
        }
        _ => {}
    }
}

/// Prunes a weight tensor in place to the given preserve ratio and returns the
/// pruned channel indices.
pub fn prune_weight(weight: &mut Tensor, preserve_ratio: f32) -> Vec<usize> {
    let importance = channel_importance(weight);
    let pruned = select_pruned_channels(&importance, preserve_ratio);
    zero_channels(weight, &pruned);
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_sums_absolute_weights_per_input_channel() {
        // Dense [2 out, 3 in].
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.0, 3.0, 1.0, 0.5], &[2, 3]).unwrap();
        let imp = channel_importance(&w);
        assert_eq!(imp.len(), 3);
        assert!((imp[0] - 4.0).abs() < 1e-6);
        assert!((imp[1] - 3.0).abs() < 1e-6);
        assert!((imp[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn importance_for_conv_filters() {
        // [1 out, 2 in, 1x1]: channel 0 weight 0.1, channel 1 weight -5.
        let w = Tensor::from_vec(vec![0.1, -5.0], &[1, 2, 1, 1]).unwrap();
        let imp = channel_importance(&w);
        assert!(imp[1] > imp[0]);
        // Unsupported rank returns empty.
        assert!(channel_importance(&Tensor::zeros(&[4])).is_empty());
    }

    #[test]
    fn least_important_channels_are_pruned_first() {
        let importance = vec![5.0, 0.1, 3.0, 0.2];
        let pruned = select_pruned_channels(&importance, 0.5);
        assert_eq!(pruned, vec![1, 3]);
        // Preserve everything.
        assert!(select_pruned_channels(&importance, 1.0).is_empty());
        // At least one channel survives even with a tiny ratio.
        assert_eq!(select_pruned_channels(&importance, 0.01).len(), 3);
        assert!(select_pruned_channels(&[], 0.5).is_empty());
    }

    #[test]
    fn prune_weight_zeroes_selected_channels_only() {
        let mut w = Tensor::from_vec(vec![1.0, 0.01, 2.0, 0.02, 3.0, 0.03], &[3, 2]).unwrap();
        let pruned = prune_weight(&mut w, 0.5);
        assert_eq!(pruned, vec![1]);
        // Column 1 is zeroed, column 0 untouched.
        assert_eq!(w.get(&[0, 1]), Some(0.0));
        assert_eq!(w.get(&[2, 1]), Some(0.0));
        assert_eq!(w.get(&[0, 0]), Some(1.0));
    }

    #[test]
    fn pruning_a_conv_tensor_preserves_other_channels() {
        let mut w = Tensor::from_vec(
            vec![
                // out 0: in0 kernel, in1 kernel
                1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, // out 1
                2.0, 2.0, 2.0, 2.0, 0.1, 0.1, 0.1, 0.1,
            ],
            &[2, 2, 2, 2],
        )
        .unwrap();
        let pruned = prune_weight(&mut w, 0.5);
        assert_eq!(pruned, vec![1]);
        assert_eq!(w.get(&[0, 1, 0, 0]), Some(0.0));
        assert_eq!(w.get(&[1, 1, 1, 1]), Some(0.0));
        assert_eq!(w.get(&[1, 0, 0, 0]), Some(2.0));
    }
}
