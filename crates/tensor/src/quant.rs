//! Integer (quantized) kernels and the scalar quantization arithmetic shared
//! by every layer of the stack.
//!
//! The compression policies assign per-layer weight/activation bitwidths;
//! executing those layers through true integer arithmetic — instead of
//! dequantizing every weight back to `f32` — is what makes the measured
//! latency reflect the MCU-class deployment the search optimizes. This module
//! provides:
//!
//! * [`QuantParams`] — an affine activation quantization `code = round(v / s)
//!   + zp` clamped to a signed code range that always fits `i8` (activations
//!   are quantized to at most 8 bits), with the scalar
//!   [`QuantParams::quantize`] / [`QuantParams::dequantize`] maps;
//! * [`weight_code`] — the symmetric signed weight quantizer shared by the
//!   fake-quant `f32` round trip in `ie_compress` and the integer plan
//!   construction in `ie_nn`, so both paths derive bit-identical codes from
//!   one scale;
//! * two integer kernel families with `i32` accumulators: the
//!   **classic-layout** kernels ([`gemm_i8_into`], [`gemm_i16_into`],
//!   [`matvec_i8_into`], [`matvec_i16_into`] and their batched variants),
//!   which mirror the `f32` GEMM's blocked register-tile structure and
//!   operand layouts and serve as the cross-checked oracles, and the
//!   **transposed madd** kernel ([`gemm_i16t_into`] with
//!   [`transpose_widen_into`]) the execution plans actually run — on AVX2 an
//!   `i32` lane multiply has no edge over `f32` FMA, so the fast path is the
//!   `vpmaddwd`-shaped contiguous dot (see the kernel docs);
//! * [`dequant_acc`] — the requantization epilogue's scalar step, fixed here
//!   so the optimized kernels and the naive fake-quant reference agree bit
//!   for bit.
//!
//! # Determinism and overflow
//!
//! Integer addition is associative, so — unlike the `f32` kernels — the
//! blocked integer kernels are bit-identical to a naive triple loop by
//! construction, regardless of tile shape. Accumulation uses **wrapping**
//! `i32` arithmetic: a single `i8·i8` product is at most `2^14`, so the i8
//! path is mathematically exact for depths up to `2^17`; the i16 path
//! (products up to `2^30`) can wrap for adversarially large codes at large
//! depths, in which case it wraps identically in the kernel and in the
//! reference — deterministic on every platform, never undefined behaviour.

use crate::dispatch::{self, IsaTier};

/// Affine quantization parameters of one activation tensor.
///
/// Codes live in the signed range `[lo, hi]` (always within `i8` because
/// activations are quantized to at most [`MAX_ACT_BITS`] bits), the real
/// value of a code is `(code − zero_point) · scale`, and the real value `0.0`
/// maps exactly to `zero_point` — which is what lets zero padding in the
/// quantized `im2col` be a plain `zero_point` fill.
///
/// The struct caches the reciprocal scale and the `f32`-domain clamp bounds
/// so [`QuantParams::quantize`] is a multiply → `round_ties_even` → clamp →
/// convert chain with no division and no 64-bit clamping: every step maps to
/// one vector instruction, which is what lets LLVM vectorize the activation
/// quantization and requantization epilogues that sweep whole feature maps.
/// Fields are therefore private; construct via [`QuantParams::new`] /
/// [`QuantParams::from_range`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    /// Cached `1 / scale` (quantization multiplies instead of dividing).
    inv_scale: f32,
    zero_point: i32,
    lo: i32,
    hi: i32,
    /// Cached `(lo − zero_point) as f32` clamp bound.
    qlo: f32,
    /// Cached `(hi − zero_point) as f32` clamp bound.
    qhi: f32,
}

/// Maximum activation bitwidth of the integer engine (codes must fit `i8`).
pub const MAX_ACT_BITS: u8 = 8;

impl QuantParams {
    /// Builds parameters from an explicit scale, zero point and code range.
    ///
    /// # Panics
    ///
    /// Panics when the scale is not a positive finite number or the range is
    /// empty or does not contain the zero point.
    pub fn new(scale: f32, zero_point: i32, lo: i32, hi: i32) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive and finite: {scale}");
        assert!(
            lo <= zero_point && zero_point <= hi,
            "zero point {zero_point} outside [{lo},{hi}]"
        );
        QuantParams {
            scale,
            inv_scale: 1.0 / scale,
            zero_point,
            lo,
            hi,
            qlo: (lo - zero_point) as f32,
            qhi: (hi - zero_point) as f32,
        }
    }

    /// Step size between adjacent codes.
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Code representing the real value `0.0`.
    #[inline]
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Smallest representable code.
    #[inline]
    pub fn lo(&self) -> i32 {
        self.lo
    }

    /// Largest representable code.
    #[inline]
    pub fn hi(&self) -> i32 {
        self.hi
    }
    /// Builds parameters for a `bits`-bit activation whose observed values
    /// span `[min, max]` (from calibration).
    ///
    /// Non-negative ranges (post-ReLU activations) use the full
    /// `2^bits − 1`-step range with the zero point pinned to the lowest code,
    /// mirroring the paper's unsigned activation quantization; ranges that
    /// cross zero use a symmetric scale with a zero point of 0. Degenerate
    /// ranges (`max ≤ 0` for non-negative, all-zero otherwise) fall back to a
    /// scale of 1 so the parameters stay finite and deterministic.
    ///
    /// # Panics
    ///
    /// Panics when `bits` is zero or exceeds [`MAX_ACT_BITS`].
    pub fn from_range(min: f32, max: f32, bits: u8) -> Self {
        assert!(
            (1..=MAX_ACT_BITS).contains(&bits),
            "activation bits must be in 1..={MAX_ACT_BITS}, got {bits}"
        );
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        if min >= 0.0 {
            // Unsigned-style range mapped onto signed storage: code `lo` is
            // the real value 0, every one of the 2^bits − 1 steps is used.
            let steps = (hi - lo) as f32;
            let scale = if max > 0.0 { (max / steps).max(f32::MIN_POSITIVE) } else { 1.0 };
            QuantParams::new(scale, lo, lo, hi)
        } else {
            let max_abs = max.abs().max(min.abs());
            let denom = hi.max(1) as f32;
            let scale = if max_abs > 0.0 { (max_abs / denom).max(f32::MIN_POSITIVE) } else { 1.0 };
            QuantParams::new(scale, 0, lo, hi)
        }
    }

    /// Quantizes a real value to its code:
    /// `clamp(round_ties_even(v · (1/scale))) + zero_point`, with the clamp
    /// applied in the `f32` domain (bounds pre-shifted by the zero point).
    ///
    /// Deterministic for every input (NaN maps to the zero point, infinities
    /// saturate at the range ends), and every step lowers to one vector
    /// instruction — no division, no widening — so code sweeping a slice
    /// through this function auto-vectorizes.
    #[inline]
    pub fn quantize(&self, v: f32) -> i32 {
        let q = (v * self.inv_scale).round_ties_even().clamp(self.qlo, self.qhi);
        // In-range by the clamp (NaN casts to 0, also in range after the
        // shift), so the cast is exact.
        q as i32 + self.zero_point
    }

    /// Real value of a code: `(code − zero_point) · scale`.
    #[inline]
    pub fn dequantize(&self, code: i32) -> f32 {
        (code - self.zero_point) as f32 * self.scale
    }

    /// Quantizes a whole `f32` slice into `i8` codes — the float→int
    /// boundary of the integer engine, dispatched to the active ISA tier.
    /// Element-for-element identical to calling [`QuantParams::quantize`]
    /// (including NaN → zero point), on every tier.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ.
    pub fn quantize_slice_into(&self, src: &[f32], dst: &mut [i8]) {
        self.quantize_slice_into_tier(dispatch::active(), src, dst);
    }

    /// [`QuantParams::quantize_slice_into`] on an explicitly chosen ISA tier
    /// (clamped to the hardware).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ.
    pub fn quantize_slice_into_tier(&self, tier: IsaTier, src: &[f32], dst: &mut [i8]) {
        assert_eq!(src.len(), dst.len(), "quantize: length mismatch");
        #[cfg(target_arch = "x86_64")]
        if simd::try_quantize_slice(tier, self, src, dst) {
            return;
        }
        let _ = tier;
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = self.quantize(v) as i8;
        }
    }
}

/// Symmetric signed weight quantizer: the integer code of weight `w` at the
/// given `scale` and bitwidth.
///
/// For `bits ≥ 2` this is the usual two's-complement rounding
/// `clamp(round(w / scale), −2^{bits−1}, 2^{bits−1} − 1)`. One-bit weights
/// use the two nonzero levels `{−1, +1}` (binary networks have no zero
/// level), **except** that an exactly-zero weight keeps the code 0: channel
/// pruning zeroes whole filter blocks, and resurrecting them as `+scale`
/// would silently undo the pruning.
#[inline]
pub fn weight_code(w: f32, scale: f32, bits: u8) -> i32 {
    debug_assert!((1..=16).contains(&bits), "weight codes must fit i16");
    if bits == 1 {
        if w == 0.0 {
            0
        } else if w > 0.0 {
            1
        } else {
            -1
        }
    } else {
        let hi = (1i64 << (bits - 1)) - 1;
        let lo = -(1i64 << (bits - 1));
        ((w / scale).round() as i64).clamp(lo, hi) as i32
    }
}

/// The requantization epilogue's scalar step: converts one `i32` accumulator
/// back to a real value.
///
/// `corr` is the zero-point correction `zp_in · Σ_k w_code[k]` (so the
/// accumulator may sum raw input codes), `scale` is the combined
/// `w_scale · in_scale` and `bias` the layer's `f32` bias. Both the optimized
/// kernels and the naive fake-quant reference call this exact function, so
/// their results agree bit for bit.
#[inline]
pub fn dequant_acc(acc: i32, corr: i32, scale: f32, bias: f32) -> f32 {
    acc.wrapping_sub(corr) as f32 * scale + bias
}

/// The fused-ReLU select of the epilogues: `f` if strictly positive, else
/// `+0.0` — exactly `vmaxps(f, 0)` on every tier (NaN and `-0.0` map to 0).
#[inline(always)]
fn relu_sel(f: f32, relu: bool) -> f32 {
    if !relu || f > 0.0 {
        f
    } else {
        0.0
    }
}

/// Requantization epilogue over a slice with one shared zero-point
/// correction and bias (the convolution layout: the caller runs it once per
/// output-channel row): `out[i] = relu?([`dequant_acc`])` for every
/// accumulator. Dispatched to the active ISA tier; bit-identical across
/// tiers (subtract, convert, multiply, add — individually rounded, no FMA).
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn dequant_slice_into(
    acc: &[i32],
    corr: i32,
    scale: f32,
    bias: f32,
    relu: bool,
    out: &mut [f32],
) {
    dequant_slice_into_tier(dispatch::active(), acc, corr, scale, bias, relu, out);
}

/// [`dequant_slice_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn dequant_slice_into_tier(
    tier: IsaTier,
    acc: &[i32],
    corr: i32,
    scale: f32,
    bias: f32,
    relu: bool,
    out: &mut [f32],
) {
    assert_eq!(acc.len(), out.len(), "dequant: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::try_dequant_slice(tier, acc, corr, scale, bias, relu, out) {
        return;
    }
    let _ = tier;
    for (o, &a) in out.iter_mut().zip(acc) {
        *o = relu_sel(dequant_acc(a, corr, scale, bias), relu);
    }
}

/// Requantization epilogue emitting the next quantized layer's input codes:
/// `out[i] = max(p.quantize(dequant_acc(acc[i], corr, scale, bias)), floor)`
/// with one shared correction and bias. `floor` is the consumer's zero point
/// when a ReLU is fused (clamping codes below real zero) or its `lo` bound
/// otherwise. Dispatched; bit-identical across tiers.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn requant_slice_into(
    acc: &[i32],
    corr: i32,
    scale: f32,
    bias: f32,
    p: &QuantParams,
    floor: i32,
    out: &mut [i8],
) {
    requant_slice_into_tier(dispatch::active(), acc, corr, scale, bias, p, floor, out);
}

/// [`requant_slice_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn requant_slice_into_tier(
    tier: IsaTier,
    acc: &[i32],
    corr: i32,
    scale: f32,
    bias: f32,
    p: &QuantParams,
    floor: i32,
    out: &mut [i8],
) {
    assert_eq!(acc.len(), out.len(), "requant: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::try_requant_slice(tier, acc, corr, scale, bias, p, floor, out) {
        return;
    }
    let _ = tier;
    for (o, &a) in out.iter_mut().zip(acc) {
        *o = p.quantize(dequant_acc(a, corr, scale, bias)).max(floor) as i8;
    }
}

/// Requantization epilogue over a sample-major accumulator row where the
/// output-row index varies **along** the slice (the dense layout): element
/// `i` uses `corrs[i]` and `biases[i]` with the shared `scale`. Dispatched;
/// bit-identical across tiers.
///
/// # Panics
///
/// Panics when any slice length differs from `out.len()`.
pub fn dequant_rows_slice_into(
    acc: &[i32],
    corrs: &[i32],
    biases: &[f32],
    scale: f32,
    relu: bool,
    out: &mut [f32],
) {
    dequant_rows_slice_into_tier(dispatch::active(), acc, corrs, biases, scale, relu, out);
}

/// [`dequant_rows_slice_into`] on an explicitly chosen ISA tier (clamped to
/// the hardware).
///
/// # Panics
///
/// Panics when any slice length differs from `out.len()`.
pub fn dequant_rows_slice_into_tier(
    tier: IsaTier,
    acc: &[i32],
    corrs: &[i32],
    biases: &[f32],
    scale: f32,
    relu: bool,
    out: &mut [f32],
) {
    assert_eq!(acc.len(), out.len(), "dequant rows: acc length mismatch");
    assert_eq!(corrs.len(), out.len(), "dequant rows: corr length mismatch");
    assert_eq!(biases.len(), out.len(), "dequant rows: bias length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::try_dequant_rows(tier, acc, corrs, biases, scale, relu, out) {
        return;
    }
    let _ = tier;
    for (o, ((&a, &corr), &bias)) in out.iter_mut().zip(acc.iter().zip(corrs).zip(biases)) {
        *o = relu_sel(dequant_acc(a, corr, scale, bias), relu);
    }
}

/// Code-emitting counterpart of [`dequant_rows_slice_into`] (dense layout,
/// per-element correction/bias). Dispatched; bit-identical across tiers.
///
/// # Panics
///
/// Panics when any slice length differs from `out.len()`.
pub fn requant_rows_slice_into(
    acc: &[i32],
    corrs: &[i32],
    biases: &[f32],
    scale: f32,
    p: &QuantParams,
    floor: i32,
    out: &mut [i8],
) {
    requant_rows_slice_into_tier(dispatch::active(), acc, corrs, biases, scale, p, floor, out);
}

/// [`requant_rows_slice_into`] on an explicitly chosen ISA tier (clamped to
/// the hardware).
///
/// # Panics
///
/// Panics when any slice length differs from `out.len()`.
#[allow(clippy::too_many_arguments)]
pub fn requant_rows_slice_into_tier(
    tier: IsaTier,
    acc: &[i32],
    corrs: &[i32],
    biases: &[f32],
    scale: f32,
    p: &QuantParams,
    floor: i32,
    out: &mut [i8],
) {
    assert_eq!(acc.len(), out.len(), "requant rows: acc length mismatch");
    assert_eq!(corrs.len(), out.len(), "requant rows: corr length mismatch");
    assert_eq!(biases.len(), out.len(), "requant rows: bias length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::try_requant_rows(tier, acc, corrs, biases, scale, p, floor, out) {
        return;
    }
    let _ = tier;
    for (i, o) in out.iter_mut().enumerate() {
        *o = p.quantize(dequant_acc(acc[i], corrs[i], scale, biases[i])).max(floor) as i8;
    }
}

/// Rows of `A` processed together by the integer register-tiled micro-kernel.
const QGEMM_MR: usize = 4;
/// Columns of `B` covered by one integer register tile.
const QGEMM_NR: usize = 16;

fn check_qgemm_lens<A, B>(a: &[A], b: &[B], out: &[i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "qgemm: lhs buffer length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "qgemm: rhs buffer length {} != {k}x{n}", b.len());
    assert_eq!(out.len(), m * n, "qgemm: out buffer length {} != {m}x{n}", out.len());
}

macro_rules! int_gemm {
    ($name:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// `a` is `[m, k]`, `b` is `[k, n]` and `out` is `[m, n]`, all
        /// row-major. Accumulates in wrapping `i32`; integer addition is
        /// associative, so the blocked tiles produce exactly the naive
        /// triple-loop result. Never allocates.
        ///
        /// # Panics
        ///
        /// Panics when a buffer length does not match its `m`/`k`/`n`
        /// dimensions.
        pub fn $name(a: &[$ty], b: &[$ty], out: &mut [i32], m: usize, k: usize, n: usize) {
            check_qgemm_lens(a, b, out, m, k, n);
            out.fill(0);
            if m == 0 || k == 0 || n == 0 {
                return;
            }
            let n_main = n - n % QGEMM_NR;
            for jb in (0..n_main).step_by(QGEMM_NR) {
                let mut i = 0;
                while i + QGEMM_MR <= m {
                    let mut acc = [[0i32; QGEMM_NR]; QGEMM_MR];
                    for p in 0..k {
                        let brow: &[$ty; QGEMM_NR] =
                            b[p * n + jb..p * n + jb + QGEMM_NR].try_into().expect("tile width");
                        for (r, acc_row) in acc.iter_mut().enumerate() {
                            let v = i32::from(a[(i + r) * k + p]);
                            for t in 0..QGEMM_NR {
                                acc_row[t] = acc_row[t].wrapping_add(v * i32::from(brow[t]));
                            }
                        }
                    }
                    for (r, acc_row) in acc.iter().enumerate() {
                        let row = (i + r) * n + jb;
                        out[row..row + QGEMM_NR].copy_from_slice(acc_row);
                    }
                    i += QGEMM_MR;
                }
                while i < m {
                    let mut acc = [0i32; QGEMM_NR];
                    let arow = &a[i * k..(i + 1) * k];
                    for (p, &av) in arow.iter().enumerate() {
                        let brow: &[$ty; QGEMM_NR] =
                            b[p * n + jb..p * n + jb + QGEMM_NR].try_into().expect("tile width");
                        let v = i32::from(av);
                        for t in 0..QGEMM_NR {
                            acc[t] = acc[t].wrapping_add(v * i32::from(brow[t]));
                        }
                    }
                    out[i * n + jb..i * n + jb + QGEMM_NR].copy_from_slice(&acc);
                    i += 1;
                }
            }
            // Column remainder: plain row-major accumulation.
            if n_main < n {
                for i in 0..m {
                    let arow = &a[i * k..(i + 1) * k];
                    let orow = &mut out[i * n + n_main..(i + 1) * n];
                    for (p, &av) in arow.iter().enumerate() {
                        let v = i32::from(av);
                        let brow = &b[p * n + n_main..(p + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o = o.wrapping_add(v * i32::from(bv));
                        }
                    }
                }
            }
        }
    };
}

int_gemm!(
    gemm_i8_into,
    i8,
    "Dense blocked i8 GEMM: writes `A·B` into the `i32` accumulator buffer."
);
int_gemm!(
    gemm_i16_into,
    i16,
    "Dense blocked i16 GEMM: writes `A·B` into the `i32` accumulator buffer."
);

/// Lanes of the integer dot products (mirrors the `f32` `dot_lanes`).
const QDOT_LANES: usize = 8;

macro_rules! int_matvec {
    ($name:ident, $batch_name:ident, $ty:ty) => {
        /// Integer matrix–vector product into a caller-provided `i32`
        /// accumulator buffer: `a` is `[m, k]`, `x` has `k` elements, `out`
        /// has `m` elements. Wrapping `i32` accumulation; never allocates.
        ///
        /// # Panics
        ///
        /// Panics when a buffer length does not match its dimensions.
        pub fn $name(a: &[$ty], x: &[$ty], out: &mut [i32], m: usize, k: usize) {
            assert_eq!(a.len(), m * k, "qmatvec: matrix length {} != {m}x{k}", a.len());
            assert_eq!(x.len(), k, "qmatvec: vector length {} != {k}", x.len());
            assert_eq!(out.len(), m, "qmatvec: out length {} != {m}", out.len());
            for (o, row) in out.iter_mut().zip(a.chunks_exact(k.max(1))) {
                let mut acc = [0i32; QDOT_LANES];
                let chunks = k / QDOT_LANES;
                for c in 0..chunks {
                    for t in 0..QDOT_LANES {
                        let idx = c * QDOT_LANES + t;
                        acc[t] = acc[t].wrapping_add(i32::from(row[idx]) * i32::from(x[idx]));
                    }
                }
                let mut sum = 0i32;
                for lane in acc {
                    sum = sum.wrapping_add(lane);
                }
                for idx in chunks * QDOT_LANES..k {
                    sum = sum.wrapping_add(i32::from(row[idx]) * i32::from(x[idx]));
                }
                *o = sum;
            }
            if k == 0 {
                out.fill(0);
            }
        }

        /// Batched integer matrix–vector product: one shared `[m, k]` matrix
        /// against `batch` sample-major input vectors (`xs` is `[batch, k]`,
        /// `out` is `[batch, m]`). Row-major over the matrix with samples
        /// innermost, like the `f32` batched kernel; each sample's result is
        /// identical to a separate single-vector call.
        ///
        /// # Panics
        ///
        /// Panics when a buffer length does not match its dimensions.
        pub fn $batch_name(
            a: &[$ty],
            xs: &[$ty],
            out: &mut [i32],
            m: usize,
            k: usize,
            batch: usize,
        ) {
            assert_eq!(a.len(), m * k, "qmatvec_batch: matrix length {} != {m}x{k}", a.len());
            assert_eq!(xs.len(), batch * k, "qmatvec_batch: vectors length mismatch");
            assert_eq!(out.len(), batch * m, "qmatvec_batch: out length mismatch");
            if k == 0 {
                out.fill(0);
                return;
            }
            for (i, row) in a.chunks_exact(k).enumerate() {
                for s in 0..batch {
                    let x = &xs[s * k..(s + 1) * k];
                    let mut sum = 0i32;
                    for (&w, &v) in row.iter().zip(x) {
                        sum = sum.wrapping_add(i32::from(w) * i32::from(v));
                    }
                    out[s * m + i] = sum;
                }
            }
        }
    };
}

int_matvec!(matvec_i8_into, matvec_i8_batch_into, i8);
int_matvec!(matvec_i16_into, matvec_i16_batch_into, i16);

/// Depth alignment of the transposed madd GEMM operands: callers pad both
/// operands' depth to a multiple of this (zero-filled — integer zeros
/// contribute exactly nothing), which removes the vector loop's scalar tail.
pub const MADD_DEPTH_ALIGN: usize = 16;

/// Contiguous i16 dot product with `i32` wrapping accumulation.
///
/// This exact shape — a single reduction over `sext(i16)·sext(i16)` products
/// — is what LLVM lowers to the x86 `vpmaddwd` multiply-add-pairs
/// instruction, which retires **two** integer MACs per lane per instruction:
/// twice the multiply throughput of `f32` FMA at equal register width, and
/// the entire reason the quantized engine beats the float kernels on wide
/// layers. Any blocking/interleaving of this loop breaks the pattern match
/// (measured: 2–3× slower), which is why the transposed GEMM calls the
/// plain dot instead of register-tiling like the `f32` kernel. On the
/// portable tier LLVM emits the 128-bit `pmaddwd` (SSE2 baseline); the AVX2
/// tier uses the 256-bit form explicitly and the VNNI tier fuses the
/// multiply-add-pairs *and* the accumulation into one 512-bit `vpdpwssd`.
/// Integer addition is associative, so all tiers are bit-identical.
#[inline]
fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    let mut sum = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        sum = sum.wrapping_add(i32::from(x) * i32::from(y));
    }
    sum
}

/// Cache-blocked widening transpose: turns the `[k, n]` column matrix the
/// quantized `im2col` produces into the `[n, kp]` row-major, depth-padded
/// `i16` right operand of [`gemm_i16t_into`].
///
/// The plane-major `im2col` lowering is fast (long contiguous copy runs) but
/// emits columns; the madd GEMM needs contiguous depth **rows**. Fusing the
/// transpose into either side is slower than doing it blocked here: 32×32
/// tiles keep both the strided reads and the contiguous writes inside L1,
/// and the depth tail `k..kp` of every row is zero-filled (exact against the
/// zero-padded weight rows).
///
/// # Panics
///
/// Panics when `kp < k` or a buffer length does not match.
pub fn transpose_widen_into(cols: &[i8], k: usize, n: usize, kp: usize, out: &mut [i16]) {
    assert!(kp >= k, "padded depth {kp} below real depth {k}");
    assert_eq!(cols.len(), k * n, "transpose: column buffer length {} != {k}x{n}", cols.len());
    assert_eq!(out.len(), n * kp, "transpose: out buffer length {} != {n}x{kp}", out.len());
    // 16(n) × 8(k) register tiles: every read is a contiguous 16-byte run of
    // one source row, every write a contiguous 16-byte run of one output
    // row; only the in-register tile is permuted. ~2.3× faster than a plain
    // blocked scalar transpose (measured on the conv shapes of the paper
    // backbone).
    const TJ: usize = 16;
    const TP: usize = 8;
    let n_main = n - n % TJ;
    let k_main = k - k % TP;
    for pb in (0..k_main).step_by(TP) {
        for jb in (0..n_main).step_by(TJ) {
            let mut tile = [[0i16; TP]; TJ];
            for pp in 0..TP {
                let row = &cols[(pb + pp) * n + jb..(pb + pp) * n + jb + TJ];
                for (j, t) in tile.iter_mut().enumerate() {
                    t[pp] = i16::from(row[j]);
                }
            }
            for (j, t) in tile.iter().enumerate() {
                out[(jb + j) * kp + pb..(jb + j) * kp + pb + TP].copy_from_slice(t);
            }
        }
        // Column remainder (n % 16).
        for j in n_main..n {
            for pp in 0..TP {
                out[j * kp + pb + pp] = i16::from(cols[(pb + pp) * n + j]);
            }
        }
    }
    // Depth remainder (k % 8) and the zero-filled pad tail of every row.
    for p in k_main..k {
        for j in 0..n {
            out[j * kp + p] = i16::from(cols[p * n + j]);
        }
    }
    for j in 0..n {
        out[j * kp + k..(j + 1) * kp].fill(0);
    }
}

/// Transposed-operand integer GEMM: `out[i][j] = Σ_p a[i][p] · bt[j][p]`
/// with `a` as `[m, kp]` and `bt` as `[n, kp]`, both row-major — i.e. `bt`
/// is the **transposed** right operand, so every output element is a dot of
/// two contiguous rows (see [`dot_i16`] for why that shape is the fast one
/// on x86). `kp` is the padded depth; callers align it to
/// [`MADD_DEPTH_ALIGN`] with zero fill, which changes no result.
///
/// Serves both the quantized convolution (`a` = packed weight codes, `bt` =
/// the `im2row`-lowered activation patches) and the quantized dense layer
/// (`a` = sample-major activation vectors, `bt` = packed weight codes).
/// Wrapping `i32` accumulation; integer addition is associative, so the
/// result is bit-identical to any naive evaluation order. Never allocates.
///
/// # Panics
///
/// Panics when a buffer length does not match its `m`/`kp`/`n` dimensions.
pub fn gemm_i16t_into(a: &[i16], bt: &[i16], out: &mut [i32], m: usize, kp: usize, n: usize) {
    gemm_i16t_into_tier(dispatch::active(), a, bt, out, m, kp, n);
}

/// [`gemm_i16t_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when a buffer length does not match its `m`/`kp`/`n` dimensions.
pub fn gemm_i16t_into_tier(
    tier: IsaTier,
    a: &[i16],
    bt: &[i16],
    out: &mut [i32],
    m: usize,
    kp: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * kp, "gemm_t: lhs buffer length {} != {m}x{kp}", a.len());
    assert_eq!(bt.len(), n * kp, "gemm_t: rhs buffer length {} != {n}x{kp}", bt.len());
    assert_eq!(out.len(), m * n, "gemm_t: out buffer length {} != {m}x{n}", out.len());
    if kp == 0 {
        out.fill(0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if simd::try_gemm_i16t(tier, a, bt, out, m, kp, n) {
        return;
    }
    let _ = tier;
    for (j, brow) in bt.chunks_exact(kp).enumerate() {
        for (i, arow) in a.chunks_exact(kp).enumerate() {
            out[i * n + j] = dot_i16(arow, brow);
        }
    }
}

/// AVX2 / AVX-512-VNNI tier implementations of the integer kernels (explicit
/// `core::arch` intrinsics). All integer accumulation is wrapping and
/// associative, so any vector re-blocking is bit-identical to the portable
/// loops; the `f32` steps of the quantize/dequantize kernels replicate the
/// scalar operation sequence exactly (no FMA).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::*;
    use core::arch::x86_64::*;

    /// Runs the AVX2 or VNNI madd GEMM when the clamped tier allows it;
    /// returns `false` when the caller should take the portable path. Safe:
    /// the feature check sits right next to the `unsafe` calls it justifies.
    pub(super) fn try_gemm_i16t(
        tier: IsaTier,
        a: &[i16],
        bt: &[i16],
        out: &mut [i32],
        m: usize,
        kp: usize,
        n: usize,
    ) -> bool {
        match dispatch::clamp(tier) {
            // SAFETY: `clamp` never returns a tier above the detected
            // features, so the required instruction sets are present.
            IsaTier::Vnni => unsafe { gemm_i16t_vnni(a, bt, out, m, kp, n) },
            IsaTier::Avx2 => unsafe { gemm_i16t_avx2(a, bt, out, m, kp, n) },
            IsaTier::Portable => return false,
        }
        true
    }

    /// AVX2 activation-quantization attempt; see [`try_gemm_i16t`].
    pub(super) fn try_quantize_slice(
        tier: IsaTier,
        p: &QuantParams,
        src: &[f32],
        dst: &mut [i8],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { quantize_slice_avx2(p, src, dst) };
        true
    }

    /// AVX2 dequantization-epilogue attempt; see [`try_gemm_i16t`].
    pub(super) fn try_dequant_slice(
        tier: IsaTier,
        acc: &[i32],
        corr: i32,
        scale: f32,
        bias: f32,
        relu: bool,
        out: &mut [f32],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { dequant_slice_avx2(acc, corr, scale, bias, relu, out) };
        true
    }

    /// AVX2 requantization-epilogue attempt; see [`try_gemm_i16t`].
    #[allow(clippy::too_many_arguments)]
    pub(super) fn try_requant_slice(
        tier: IsaTier,
        acc: &[i32],
        corr: i32,
        scale: f32,
        bias: f32,
        p: &QuantParams,
        floor: i32,
        out: &mut [i8],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { requant_slice_avx2(acc, corr, scale, bias, p, floor, out) };
        true
    }

    /// AVX2 per-row dequantization attempt; see [`try_gemm_i16t`].
    pub(super) fn try_dequant_rows(
        tier: IsaTier,
        acc: &[i32],
        corrs: &[i32],
        biases: &[f32],
        scale: f32,
        relu: bool,
        out: &mut [f32],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { dequant_rows_avx2(acc, corrs, biases, scale, relu, out) };
        true
    }

    /// AVX2 per-row requantization attempt; see [`try_gemm_i16t`].
    #[allow(clippy::too_many_arguments)]
    pub(super) fn try_requant_rows(
        tier: IsaTier,
        acc: &[i32],
        corrs: &[i32],
        biases: &[f32],
        scale: f32,
        p: &QuantParams,
        floor: i32,
        out: &mut [i8],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { requant_rows_avx2(acc, corrs, biases, scale, p, floor, out) };
        true
    }

    /// 256-bit `vpmaddwd` dot product (16 i16 per step).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i16_avx2(a: &[i16], b: &[i16]) -> i32 {
        let chunks = a.len() / 16;
        let mut acc = _mm256_setzero_si256();
        // SAFETY: chunk c reads 16 i16 at 16c with 16c + 16 <= len from both
        // equally long slices.
        unsafe {
            for c in 0..chunks {
                let va = _mm256_loadu_si256(a.as_ptr().add(c * 16).cast());
                let vb = _mm256_loadu_si256(b.as_ptr().add(c * 16).cast());
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            }
        }
        let mut lanes = [0i32; 8];
        // SAFETY: `lanes` is exactly 32 bytes.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc) };
        let mut sum = lanes.iter().fold(0i32, |s, &l| s.wrapping_add(l));
        for i in chunks * 16..a.len() {
            sum = sum.wrapping_add(i32::from(a[i]) * i32::from(b[i]));
        }
        sum
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported; buffer lengths are validated by
    /// the dispatching wrapper.
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_i16t_avx2(
        a: &[i16],
        bt: &[i16],
        out: &mut [i32],
        _m: usize,
        kp: usize,
        n: usize,
    ) {
        for (j, brow) in bt.chunks_exact(kp).enumerate() {
            for (i, arow) in a.chunks_exact(kp).enumerate() {
                // SAFETY: AVX2 is in effect in this function.
                out[i * n + j] = unsafe { dot_i16_avx2(arow, brow) };
            }
        }
    }

    /// 512-bit `vpdpwssd` dot product (32 i16 per step, multiply-add-pairs
    /// and accumulate in one instruction), with a 256-bit `vpdpwssd` step for
    /// a 16-element remainder — the common case for depth padded to
    /// [`MADD_DEPTH_ALIGN`] but not to 32.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512 F/BW/VL/VNNI are supported.
    #[inline]
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
    unsafe fn dot_i16_vnni(a: &[i16], b: &[i16]) -> i32 {
        let chunks = a.len() / 32;
        let mut acc = _mm512_setzero_si512();
        // SAFETY: chunk c reads 32 i16 at 32c with 32c + 32 <= len from both
        // equally long slices; the remainder step reads 16 more only when
        // they exist.
        unsafe {
            for c in 0..chunks {
                let va = _mm512_loadu_si512(a.as_ptr().add(c * 32).cast());
                let vb = _mm512_loadu_si512(b.as_ptr().add(c * 32).cast());
                acc = _mm512_dpwssd_epi32(acc, va, vb);
            }
        }
        let mut sum = _mm512_reduce_add_epi32(acc);
        let mut done = chunks * 32;
        if a.len() - done >= 16 {
            // SAFETY: 16 i16 remain at `done` in both slices.
            unsafe {
                let va = _mm256_loadu_si256(a.as_ptr().add(done).cast());
                let vb = _mm256_loadu_si256(b.as_ptr().add(done).cast());
                let part = _mm256_dpwssd_epi32(_mm256_setzero_si256(), va, vb);
                let mut lanes = [0i32; 8];
                _mm256_storeu_si256(lanes.as_mut_ptr().cast(), part);
                sum = lanes.iter().fold(sum, |s, &l| s.wrapping_add(l));
            }
            done += 16;
        }
        for i in done..a.len() {
            sum = sum.wrapping_add(i32::from(a[i]) * i32::from(b[i]));
        }
        sum
    }

    /// # Safety
    ///
    /// Caller must ensure AVX-512 F/BW/VL/VNNI are supported; buffer lengths
    /// are validated by the dispatching wrapper.
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
    unsafe fn gemm_i16t_vnni(
        a: &[i16],
        bt: &[i16],
        out: &mut [i32],
        _m: usize,
        kp: usize,
        n: usize,
    ) {
        for (j, brow) in bt.chunks_exact(kp).enumerate() {
            for (i, arow) in a.chunks_exact(kp).enumerate() {
                // SAFETY: the required features are in effect here.
                out[i * n + j] = unsafe { dot_i16_vnni(arow, brow) };
            }
        }
    }

    /// Quantizes 8 lanes: multiply by the cached reciprocal scale, round to
    /// nearest-even, clamp in the `f32` domain, force NaN lanes to the zero
    /// code, convert and add the zero point — the scalar
    /// [`QuantParams::quantize`] chain, lane for lane.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn quantize8(p: &QuantParams, x: __m256) -> __m256i {
        let q = _mm256_mul_ps(x, _mm256_set1_ps(p.inv_scale));
        let r = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(q);
        // vmaxps/vminps return the second operand on NaN, so a NaN lane comes
        // out as qlo here; the unordered-compare blend puts it back to 0.0
        // (→ the zero point), matching the scalar NaN → zero-point mapping.
        let clamped = _mm256_min_ps(_mm256_max_ps(r, _mm256_set1_ps(p.qlo)), _mm256_set1_ps(p.qhi));
        let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(r, r);
        let fixed = _mm256_blendv_ps(clamped, _mm256_setzero_ps(), nan);
        _mm256_add_epi32(_mm256_cvtps_epi32(fixed), _mm256_set1_epi32(p.zero_point))
    }

    /// Packs two 8-lane i32 code vectors (values within `i8`) into 16 `i8`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and `dst` has at least 16 bytes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store16_i8(q0: __m256i, q1: __m256i, dst: *mut i8) {
        let p16 = _mm256_packs_epi32(q0, q1);
        let p16 = _mm256_permute4x64_epi64::<0b11_01_10_00>(p16);
        let p8 = _mm256_packs_epi16(p16, p16);
        let p8 = _mm256_permute4x64_epi64::<0b00_00_10_00>(p8);
        // SAFETY: caller guarantees 16 writable bytes at `dst`.
        unsafe { _mm_storeu_si128(dst.cast(), _mm256_castsi256_si128(p8)) };
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and the slices are equally long.
    #[target_feature(enable = "avx2")]
    unsafe fn quantize_slice_avx2(p: &QuantParams, src: &[f32], dst: &mut [i8]) {
        let blocks = src.len() / 16;
        // SAFETY: block b covers [16b, 16b+16) with 16b+16 <= len of both
        // slices.
        unsafe {
            for b in 0..blocks {
                let x0 = _mm256_loadu_ps(src.as_ptr().add(16 * b));
                let x1 = _mm256_loadu_ps(src.as_ptr().add(16 * b + 8));
                store16_i8(quantize8(p, x0), quantize8(p, x1), dst.as_mut_ptr().add(16 * b));
            }
        }
        for (d, &v) in dst[blocks * 16..].iter_mut().zip(&src[blocks * 16..]) {
            *d = p.quantize(v) as i8;
        }
    }

    /// Dequantizes 8 lanes: wrapping subtract, exact int→float convert, then
    /// separate multiply and add (two rounded ops, like the scalar
    /// [`dequant_acc`]).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn dequant8(acc: __m256i, corr: __m256i, scale: __m256, bias: __m256) -> __m256 {
        let v = _mm256_cvtepi32_ps(_mm256_sub_epi32(acc, corr));
        _mm256_add_ps(_mm256_mul_ps(v, scale), bias)
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and the slices are equally long.
    #[target_feature(enable = "avx2")]
    unsafe fn dequant_slice_avx2(
        acc: &[i32],
        corr: i32,
        scale: f32,
        bias: f32,
        relu: bool,
        out: &mut [f32],
    ) {
        let vcorr = _mm256_set1_epi32(corr);
        let vscale = _mm256_set1_ps(scale);
        let vbias = _mm256_set1_ps(bias);
        let zero = _mm256_setzero_ps();
        let chunks = acc.len() / 8;
        // SAFETY: chunk c covers [8c, 8c+8) with 8c+8 <= len of both slices.
        unsafe {
            for c in 0..chunks {
                let a = _mm256_loadu_si256(acc.as_ptr().add(c * 8).cast());
                let mut f = dequant8(a, vcorr, vscale, vbias);
                if relu {
                    f = _mm256_max_ps(f, zero);
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(c * 8), f);
            }
        }
        for (o, &a) in out[chunks * 8..].iter_mut().zip(&acc[chunks * 8..]) {
            *o = relu_sel(dequant_acc(a, corr, scale, bias), relu);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and the slices are equally long.
    #[target_feature(enable = "avx2")]
    unsafe fn requant_slice_avx2(
        acc: &[i32],
        corr: i32,
        scale: f32,
        bias: f32,
        p: &QuantParams,
        floor: i32,
        out: &mut [i8],
    ) {
        let vcorr = _mm256_set1_epi32(corr);
        let vscale = _mm256_set1_ps(scale);
        let vbias = _mm256_set1_ps(bias);
        let vfloor = _mm256_set1_epi32(floor);
        let blocks = acc.len() / 16;
        // SAFETY: block b covers [16b, 16b+16) with 16b+16 <= len of both
        // slices.
        unsafe {
            for b in 0..blocks {
                let a0 = _mm256_loadu_si256(acc.as_ptr().add(16 * b).cast());
                let a1 = _mm256_loadu_si256(acc.as_ptr().add(16 * b + 8).cast());
                let q0 = _mm256_max_epi32(quantize8(p, dequant8(a0, vcorr, vscale, vbias)), vfloor);
                let q1 = _mm256_max_epi32(quantize8(p, dequant8(a1, vcorr, vscale, vbias)), vfloor);
                store16_i8(q0, q1, out.as_mut_ptr().add(16 * b));
            }
        }
        for (o, &a) in out[blocks * 16..].iter_mut().zip(&acc[blocks * 16..]) {
            *o = p.quantize(dequant_acc(a, corr, scale, bias)).max(floor) as i8;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and all slices are equally long.
    #[target_feature(enable = "avx2")]
    unsafe fn dequant_rows_avx2(
        acc: &[i32],
        corrs: &[i32],
        biases: &[f32],
        scale: f32,
        relu: bool,
        out: &mut [f32],
    ) {
        let vscale = _mm256_set1_ps(scale);
        let zero = _mm256_setzero_ps();
        let chunks = acc.len() / 8;
        // SAFETY: chunk c covers [8c, 8c+8) with 8c+8 <= len of all slices.
        unsafe {
            for c in 0..chunks {
                let a = _mm256_loadu_si256(acc.as_ptr().add(c * 8).cast());
                let vcorr = _mm256_loadu_si256(corrs.as_ptr().add(c * 8).cast());
                let vbias = _mm256_loadu_ps(biases.as_ptr().add(c * 8));
                let mut f = dequant8(a, vcorr, vscale, vbias);
                if relu {
                    f = _mm256_max_ps(f, zero);
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(c * 8), f);
            }
        }
        for i in chunks * 8..out.len() {
            out[i] = relu_sel(dequant_acc(acc[i], corrs[i], scale, biases[i]), relu);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported and all slices are equally long.
    #[target_feature(enable = "avx2")]
    unsafe fn requant_rows_avx2(
        acc: &[i32],
        corrs: &[i32],
        biases: &[f32],
        scale: f32,
        p: &QuantParams,
        floor: i32,
        out: &mut [i8],
    ) {
        let vscale = _mm256_set1_ps(scale);
        let vfloor = _mm256_set1_epi32(floor);
        let blocks = acc.len() / 16;
        // SAFETY: block b covers [16b, 16b+16) with 16b+16 <= len of all
        // slices.
        unsafe {
            for b in 0..blocks {
                let a0 = _mm256_loadu_si256(acc.as_ptr().add(16 * b).cast());
                let a1 = _mm256_loadu_si256(acc.as_ptr().add(16 * b + 8).cast());
                let c0 = _mm256_loadu_si256(corrs.as_ptr().add(16 * b).cast());
                let c1 = _mm256_loadu_si256(corrs.as_ptr().add(16 * b + 8).cast());
                let b0 = _mm256_loadu_ps(biases.as_ptr().add(16 * b));
                let b1 = _mm256_loadu_ps(biases.as_ptr().add(16 * b + 8));
                let q0 = _mm256_max_epi32(quantize8(p, dequant8(a0, c0, vscale, b0)), vfloor);
                let q1 = _mm256_max_epi32(quantize8(p, dequant8(a1, c1, vscale, b1)), vfloor);
                store16_i8(q0, q1, out.as_mut_ptr().add(16 * b));
            }
        }
        for i in blocks * 16..out.len() {
            out[i] = p.quantize(dequant_acc(acc[i], corrs[i], scale, biases[i])).max(floor) as i8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_gemm<T: Copy + Into<i32>>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    let prod = a[i * k + p].into() * b[p * n + j].into();
                    out[i * n + j] = out[i * n + j].wrapping_add(prod);
                }
            }
        }
        out
    }

    #[test]
    fn i8_gemm_matches_naive_across_tile_boundaries() {
        let mut rng = StdRng::seed_from_u64(1);
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (4, 32, 16), (5, 33, 17), (8, 60, 40)] {
            let a: Vec<i8> = (0..m * k).map(|_| rng.gen::<i8>()).collect();
            let b: Vec<i8> = (0..k * n).map(|_| rng.gen::<i8>()).collect();
            let mut out = vec![7i32; m * n];
            gemm_i8_into(&a, &b, &mut out, m, k, n);
            assert_eq!(out, naive_gemm(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn i16_gemm_matches_naive_including_wrapping() {
        let mut rng = StdRng::seed_from_u64(2);
        // Large codes at depth 40 force i32 wrap-around in some cells; the
        // blocked kernel and the naive loop must wrap identically.
        let (m, k, n) = (5, 40, 19);
        let a: Vec<i16> = (0..m * k).map(|_| rng.gen::<i16>()).collect();
        let b: Vec<i16> = (0..k * n).map(|_| rng.gen::<i16>()).collect();
        let mut out = vec![0i32; m * n];
        gemm_i16_into(&a, &b, &mut out, m, k, n);
        assert_eq!(out, naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn matvec_kernels_match_gemm_column() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k) = (7, 29);
        let a: Vec<i8> = (0..m * k).map(|_| rng.gen::<i8>()).collect();
        let x: Vec<i8> = (0..k).map(|_| rng.gen::<i8>()).collect();
        let mut out = vec![0i32; m];
        matvec_i8_into(&a, &x, &mut out, m, k);
        let mut reference = vec![0i32; m];
        gemm_i8_into(&a, &x, &mut reference, m, k, 1);
        assert_eq!(out, reference);
        let a16: Vec<i16> = a.iter().map(|&v| i16::from(v)).collect();
        let x16: Vec<i16> = x.iter().map(|&v| i16::from(v)).collect();
        let mut out16 = vec![0i32; m];
        matvec_i16_into(&a16, &x16, &mut out16, m, k);
        assert_eq!(out16, reference);
    }

    #[test]
    fn batched_matvec_matches_per_sample_matvec() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k, batch) = (5, 17, 6);
        let a: Vec<i8> = (0..m * k).map(|_| rng.gen::<i8>()).collect();
        let xs: Vec<i8> = (0..batch * k).map(|_| rng.gen::<i8>()).collect();
        let mut batched = vec![0i32; batch * m];
        matvec_i8_batch_into(&a, &xs, &mut batched, m, k, batch);
        for s in 0..batch {
            let mut single = vec![0i32; m];
            matvec_i8_into(&a, &xs[s * k..(s + 1) * k], &mut single, m, k);
            assert_eq!(&batched[s * m..(s + 1) * m], &single[..], "sample {s}");
        }
        // k == 0 zero-fills.
        let mut out = vec![9i32; 4];
        matvec_i8_batch_into(&[], &[], &mut out, 2, 0, 2);
        assert_eq!(out, vec![0; 4]);
    }

    #[test]
    fn quant_params_round_trip_and_padding_invariant() {
        let q = QuantParams::from_range(0.0, 4.0, 8);
        assert_eq!(q.zero_point(), q.lo());
        // 0.0 maps exactly to the zero point, so padding can fill codes.
        assert_eq!(q.quantize(0.0), q.zero_point());
        assert_eq!(q.dequantize(q.zero_point()), 0.0);
        // Values round-trip to within half a step inside the range.
        for v in [0.0f32, 0.5, 1.0, 2.5, 3.99] {
            let back = q.dequantize(q.quantize(v));
            assert!((back - v).abs() <= q.scale() / 2.0 + 1e-6, "{v} -> {back}");
        }
        // Out-of-range saturates deterministically.
        assert_eq!(q.quantize(1e30), q.hi());
        assert_eq!(q.quantize(f32::NEG_INFINITY), q.lo());
        assert_eq!(q.quantize(f32::NAN), q.zero_point());

        let s = QuantParams::from_range(-2.0, 1.0, 8);
        assert_eq!(s.zero_point(), 0);
        assert_eq!(s.quantize(0.0), 0);
        assert!(s.quantize(-2.0) < 0 && s.quantize(1.0) > 0);

        // Degenerate ranges stay finite.
        let z = QuantParams::from_range(0.0, 0.0, 4);
        assert_eq!(z.scale(), 1.0);
        assert_eq!(z.quantize(0.0), z.zero_point());
    }

    #[test]
    fn transposed_madd_gemm_matches_the_classic_layout_kernel() {
        let mut rng = StdRng::seed_from_u64(5);
        for (m, k, n) in [(1usize, 1usize, 1usize), (4, 17, 9), (7, 75, 20), (16, 80, 33)] {
            let a8: Vec<i8> = (0..m * k).map(|_| rng.gen::<i8>()).collect();
            let b8: Vec<i8> = (0..k * n).map(|_| rng.gen::<i8>()).collect();
            let mut classic = vec![0i32; m * n];
            gemm_i8_into(&a8, &b8, &mut classic, m, k, n);
            // Widen + transpose + zero-pad the depth, as the plans do.
            let kp = k.next_multiple_of(MADD_DEPTH_ALIGN);
            let mut at = vec![0i16; m * kp];
            for i in 0..m {
                for p in 0..k {
                    at[i * kp + p] = i16::from(a8[i * k + p]);
                }
            }
            let mut bt = vec![0i16; n * kp];
            for p in 0..k {
                for j in 0..n {
                    bt[j * kp + p] = i16::from(b8[p * n + j]);
                }
            }
            let mut transposed = vec![7i32; m * n];
            gemm_i16t_into(&at, &bt, &mut transposed, m, kp, n);
            assert_eq!(transposed, classic, "shape {m}x{k}x{n}");
        }
        // kp == 0 zero-fills.
        let mut out = vec![3i32; 4];
        gemm_i16t_into(&[], &[], &mut out, 2, 0, 2);
        assert_eq!(out, vec![0; 4]);
    }

    #[test]
    fn weight_codes_follow_twos_complement_and_one_bit_signs() {
        assert_eq!(weight_code(0.26, 0.1, 4), 3);
        assert_eq!(weight_code(-0.9, 0.1, 4), -8, "clamped at lo");
        assert_eq!(weight_code(0.9, 0.1, 4), 7, "clamped at hi");
        // 1-bit: two nonzero levels, exact zeros (pruned weights) stay zero.
        assert_eq!(weight_code(0.7, 0.5, 1), 1);
        assert_eq!(weight_code(-0.01, 0.5, 1), -1);
        assert_eq!(weight_code(0.0, 0.5, 1), 0);
        assert_eq!(weight_code(-0.0, 0.5, 1), 0);
    }

    #[test]
    fn dequant_acc_applies_correction_scale_and_bias() {
        assert_eq!(dequant_acc(10, 4, 0.5, 1.0), 4.0);
        // Wrapping subtraction is well-defined at the i32 edges.
        assert_eq!(dequant_acc(i32::MIN, 1, 1.0, 0.0), i32::MAX as f32);
    }

    #[test]
    #[should_panic(expected = "activation bits")]
    fn oversized_activation_bits_panic() {
        let _ = QuantParams::from_range(0.0, 1.0, 9);
    }
}
