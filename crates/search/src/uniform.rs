//! Uniform-compression and random-search baselines.

use crate::env::{CompressionEnv, PolicyOutcome};
use crate::{Result, SearchError};
use ie_compress::{CompressionPolicy, LayerPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grid-searches a single `(preserve_ratio, bitwidth)` pair applied uniformly
/// to every layer (the paper's "uniform compression" comparison point) and
/// returns the feasible point with the highest exit-guided reward, or — when
/// no uniform point satisfies both constraints — the one that comes closest to
/// satisfying them.
///
/// `ratio_steps` controls the granularity of the preserve-ratio grid.
///
/// # Errors
///
/// Propagates evaluation errors; returns [`SearchError::EmptySearch`] when
/// `ratio_steps` is zero.
pub fn best_uniform_policy(
    env: &CompressionEnv,
    ratio_steps: usize,
) -> Result<(CompressionPolicy, PolicyOutcome)> {
    if ratio_steps == 0 {
        return Err(SearchError::EmptySearch);
    }
    let n = env.num_layers();
    let mut best_feasible: Option<(CompressionPolicy, PolicyOutcome)> = None;
    let mut best_any: Option<(CompressionPolicy, PolicyOutcome, u64)> = None;
    for step in 1..=ratio_steps {
        let ratio = 0.05_f32.max(step as f32 / ratio_steps as f32);
        for bits in [1u8, 2, 4, 6, 8] {
            let policy = CompressionPolicy::uniform(n, ratio, bits, bits)?;
            let outcome = env.evaluate(&policy)?;
            let violation = outcome.profile.total_flops.saturating_sub(env.config().flops_target)
                + outcome.profile.model_size_bytes.saturating_sub(env.config().size_target_bytes);
            if outcome.feasible {
                let better = best_feasible
                    .as_ref()
                    .map(|(_, b)| outcome.accuracy_reward > b.accuracy_reward)
                    .unwrap_or(true);
                if better {
                    best_feasible = Some((policy.snapped(), outcome.clone()));
                }
            }
            let closer = best_any.as_ref().map(|(_, _, v)| violation < *v).unwrap_or(true);
            if closer {
                best_any = Some((policy.snapped(), outcome, violation));
            }
        }
    }
    match best_feasible {
        Some(found) => Ok(found),
        None => best_any.map(|(p, o, _)| (p, o)).ok_or(SearchError::EmptySearch),
    }
}

/// Samples `candidates` random nonuniform policies and returns the best
/// feasible one (by exit-guided reward), falling back to the best infeasible
/// one if none is feasible. Used as the search-quality ablation baseline for
/// the DDPG search.
///
/// # Errors
///
/// Propagates evaluation errors; returns [`SearchError::EmptySearch`] when
/// `candidates` is zero.
pub fn random_search(
    env: &CompressionEnv,
    candidates: usize,
    seed: u64,
) -> Result<(CompressionPolicy, PolicyOutcome)> {
    if candidates == 0 {
        return Err(SearchError::EmptySearch);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = env.num_layers();
    let mut best: Option<(CompressionPolicy, PolicyOutcome)> = None;
    let mut best_infeasible: Option<(CompressionPolicy, PolicyOutcome)> = None;
    for _ in 0..candidates {
        let policy: CompressionPolicy = (0..n)
            .map(|_| {
                let ratio = rng.gen_range(0.05..=1.0f32);
                let wbits = rng.gen_range(1..=8u8);
                let abits = rng.gen_range(1..=8u8);
                LayerPolicy::new(ratio, wbits, abits).expect("sampled values are in range")
            })
            .collect();
        let outcome = env.evaluate(&policy)?;
        if outcome.feasible {
            let better = best
                .as_ref()
                .map(|(_, b)| outcome.accuracy_reward > b.accuracy_reward)
                .unwrap_or(true);
            if better {
                best = Some((outcome.policy.clone(), outcome));
            }
        } else {
            let better = best_infeasible
                .as_ref()
                .map(|(_, b)| outcome.accuracy_reward > b.accuracy_reward)
                .unwrap_or(true);
            if better {
                best_infeasible = Some((outcome.policy.clone(), outcome));
            }
        }
    }
    best.or(best_infeasible).ok_or(SearchError::EmptySearch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RewardMode;
    use ie_core::ExperimentConfig;

    fn env() -> CompressionEnv {
        CompressionEnv::new(&ExperimentConfig::small_test(), RewardMode::ExitGuided).unwrap()
    }

    #[test]
    fn uniform_search_returns_a_feasible_point() {
        let env = env();
        let (policy, outcome) = best_uniform_policy(&env, 6).unwrap();
        assert_eq!(policy.len(), env.num_layers());
        assert!(outcome.feasible, "a feasible uniform point must exist for the paper targets");
        // Uniform means every layer has the same policy entry.
        let first = policy.layers()[0];
        assert!(policy.layers().iter().all(|l| *l == first));
        assert!(best_uniform_policy(&env, 0).is_err());
    }

    #[test]
    fn random_search_finds_a_candidate_and_is_deterministic() {
        let env = env();
        let (p1, o1) = random_search(&env, 12, 3).unwrap();
        let (p2, _o2) = random_search(&env, 12, 3).unwrap();
        assert_eq!(p1, p2, "same seed, same result");
        assert_eq!(p1.len(), env.num_layers());
        assert!(o1.accuracy_reward > 0.0);
        assert!(random_search(&env, 0, 1).is_err());
    }

    #[test]
    fn nonuniform_random_search_can_beat_the_best_uniform_point() {
        // This is the motivation for nonuniform compression: with enough
        // candidates, at least one nonuniform policy matches or exceeds the
        // uniform optimum under the same constraints.
        let env = env();
        let (_, uniform) = best_uniform_policy(&env, 6).unwrap();
        let (_, random) = random_search(&env, 400, 7).unwrap();
        if random.feasible {
            assert!(
                random.accuracy_reward >= uniform.accuracy_reward - 0.05,
                "random nonuniform ({}) should be competitive with uniform ({})",
                random.accuracy_reward,
                uniform.accuracy_reward
            );
        }
    }
}
