//! The dual-agent DDPG search over layer-wise pruning rates and bitwidths.

use crate::env::{CompressionEnv, PolicyOutcome};
use crate::observation::{observation_for_layer, OBSERVATION_DIM};
use crate::{Result, SearchError};
use ie_compress::{CompressionPolicy, LayerPolicy};
use ie_rl::{DdpgAgent, DdpgConfig, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the compression search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Number of episodes (one episode assigns a policy to every layer).
    pub episodes: usize,
    /// Episodes of pure random exploration before the agents take over.
    pub warmup_episodes: usize,
    /// Mini-batch size of the DDPG updates.
    pub batch_size: usize,
    /// Gradient updates applied to each agent after every episode.
    pub updates_per_episode: usize,
    /// Exploration noise at the first episode.
    pub initial_noise: f32,
    /// Exploration noise at the last episode.
    pub final_noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            episodes: 120,
            warmup_episodes: 20,
            batch_size: 48,
            updates_per_episode: 10,
            initial_noise: 0.45,
            final_noise: 0.05,
            seed: 0,
        }
    }
}

impl SearchConfig {
    /// A tiny configuration used by unit tests.
    pub fn quick_test() -> Self {
        SearchConfig {
            episodes: 8,
            warmup_episodes: 4,
            batch_size: 16,
            updates_per_episode: 2,
            ..Self::default()
        }
    }
}

/// Per-episode statistics of the search.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeStats {
    /// Episode index.
    pub episode: usize,
    /// Exit-guided accuracy reward of the episode's policy.
    pub accuracy_reward: f64,
    /// Pruning-agent reward (Eq. 11).
    pub prune_reward: f64,
    /// Quantization-agent reward (Eq. 12).
    pub quant_reward: f64,
    /// Whether the policy met both constraints.
    pub feasible: bool,
    /// Best feasible accuracy reward seen up to and including this episode
    /// (0 when nothing feasible has been found yet).
    pub best_so_far: f64,
}

/// Result of a compression search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best policy found (feasible if any feasible policy was seen).
    pub best_policy: CompressionPolicy,
    /// The evaluation of the best policy.
    pub best_outcome: PolicyOutcome,
    /// Per-episode history, useful for plotting search progress.
    pub history: Vec<EpisodeStats>,
}

/// The paper's nonuniform compression search: a pruning agent and a
/// quantization agent walk the layers together and are rewarded with the
/// power-trace-aware, exit-guided accuracy reward.
#[derive(Debug, Clone)]
pub struct DdpgCompressionSearch {
    config: SearchConfig,
}

impl DdpgCompressionSearch {
    /// Creates a search with the given hyper-parameters.
    pub fn new(config: SearchConfig) -> Self {
        DdpgCompressionSearch { config }
    }

    /// The search hyper-parameters.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    fn actions_to_layer_policy(prune_action: f32, quant_action: &[f32]) -> LayerPolicy {
        let ratio = 0.05 + prune_action.clamp(0.0, 1.0) * 0.95;
        let to_bits = |a: f32| 1 + (a.clamp(0.0, 1.0) * 7.0).round() as u8;
        LayerPolicy {
            preserve_ratio: ratio,
            weight_bits: to_bits(quant_action[0]),
            activation_bits: to_bits(quant_action.get(1).copied().unwrap_or(1.0)),
        }
        .snapped()
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::EmptySearch`] for a zero-episode configuration
    /// and propagates environment/agent errors.
    pub fn run(&self, env: &CompressionEnv) -> Result<SearchResult> {
        if self.config.episodes == 0 {
            return Err(SearchError::EmptySearch);
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let ddpg_config = DdpgConfig { hidden: 48, ..DdpgConfig::default() };
        let mut prune_agent = DdpgAgent::new(&mut rng, OBSERVATION_DIM, 1, ddpg_config.clone());
        let mut quant_agent = DdpgAgent::new(&mut rng, OBSERVATION_DIM, 2, ddpg_config);

        let layers = env.layers().to_vec();
        let n_layers = layers.len();
        let mut history = Vec::with_capacity(self.config.episodes);
        let mut best: Option<PolicyOutcome> = None;
        let mut best_any: Option<PolicyOutcome> = None;

        for episode in 0..self.config.episodes {
            let progress = episode as f32 / self.config.episodes.max(1) as f32;
            let sigma = self.config.initial_noise
                + (self.config.final_noise - self.config.initial_noise) * progress;
            prune_agent.set_noise_sigma(sigma);
            quant_agent.set_noise_sigma(sigma);
            prune_agent.begin_episode();
            quant_agent.begin_episode();

            // Roll out one policy layer-by-layer.
            let mut policy = CompressionPolicy::full_precision(n_layers);
            let mut observations = Vec::with_capacity(n_layers);
            let mut prune_actions = Vec::with_capacity(n_layers);
            let mut quant_actions = Vec::with_capacity(n_layers);
            for l in 0..n_layers {
                let obs = observation_for_layer(&layers, &policy, l);
                let (pa, qa) = if episode < self.config.warmup_episodes {
                    (vec![rng.gen::<f32>()], vec![rng.gen::<f32>(), rng.gen::<f32>()])
                } else {
                    (
                        prune_agent.act_exploring(&obs, &mut rng)?,
                        quant_agent.act_exploring(&obs, &mut rng)?,
                    )
                };
                policy.layers_mut()[l] = Self::actions_to_layer_policy(pa[0], &qa);
                observations.push(obs);
                prune_actions.push(pa);
                quant_actions.push(qa);
            }

            // Evaluate the finished policy under the power trace.
            let outcome = env.evaluate(&policy)?;

            // Credit assignment: every step of the episode receives the final
            // reward (the standard AMC/HAQ-style sparse-reward treatment).
            for l in 0..n_layers {
                let next = if l + 1 < n_layers {
                    observations[l + 1].clone()
                } else {
                    vec![0.0; OBSERVATION_DIM]
                };
                prune_agent.observe(Transition {
                    state: observations[l].clone(),
                    action: prune_actions[l].clone(),
                    reward: outcome.prune_reward as f32,
                    next_state: next.clone(),
                    done: l + 1 == n_layers,
                });
                quant_agent.observe(Transition {
                    state: observations[l].clone(),
                    action: quant_actions[l].clone(),
                    reward: outcome.quant_reward as f32,
                    next_state: next,
                    done: l + 1 == n_layers,
                });
            }
            for _ in 0..self.config.updates_per_episode {
                prune_agent.update(&mut rng, self.config.batch_size)?;
                quant_agent.update(&mut rng, self.config.batch_size)?;
            }

            // Track the best feasible policy (and the best overall as fallback).
            if best_any
                .as_ref()
                .map(|b| outcome.accuracy_reward > b.accuracy_reward)
                .unwrap_or(true)
            {
                best_any = Some(outcome.clone());
            }
            if outcome.feasible
                && best
                    .as_ref()
                    .map(|b| outcome.accuracy_reward > b.accuracy_reward)
                    .unwrap_or(true)
            {
                best = Some(outcome.clone());
            }
            history.push(EpisodeStats {
                episode,
                accuracy_reward: outcome.accuracy_reward,
                prune_reward: outcome.prune_reward,
                quant_reward: outcome.quant_reward,
                feasible: outcome.feasible,
                best_so_far: best.as_ref().map(|b| b.accuracy_reward).unwrap_or(0.0),
            });
        }

        let best_outcome = best.or(best_any).ok_or(SearchError::EmptySearch)?;
        Ok(SearchResult { best_policy: best_outcome.policy.clone(), best_outcome, history })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RewardMode;
    use ie_core::ExperimentConfig;

    fn env() -> CompressionEnv {
        CompressionEnv::new(&ExperimentConfig::small_test(), RewardMode::ExitGuided).unwrap()
    }

    #[test]
    fn action_mapping_covers_the_paper_ranges() {
        let low = DdpgCompressionSearch::actions_to_layer_policy(0.0, &[0.0, 0.0]);
        let high = DdpgCompressionSearch::actions_to_layer_policy(1.0, &[1.0, 1.0]);
        assert!((low.preserve_ratio - 0.05).abs() < 1e-6);
        assert_eq!(low.weight_bits, 1);
        assert_eq!(low.activation_bits, 1);
        assert!((high.preserve_ratio - 1.0).abs() < 1e-6);
        assert_eq!(high.weight_bits, 8);
        assert_eq!(high.activation_bits, 8);
        let mid = DdpgCompressionSearch::actions_to_layer_policy(0.5, &[0.5, 0.5]);
        assert!(mid.preserve_ratio > 0.4 && mid.preserve_ratio < 0.65);
        assert!(mid.weight_bits >= 4 && mid.weight_bits <= 5);
    }

    #[test]
    fn quick_search_runs_and_tracks_progress() {
        let env = env();
        let search = DdpgCompressionSearch::new(SearchConfig::quick_test());
        let result = search.run(&env).unwrap();
        assert_eq!(result.history.len(), search.config().episodes);
        assert_eq!(result.best_policy.len(), env.num_layers());
        assert!(result.best_outcome.accuracy_reward > 0.0);
        // best_so_far is non-decreasing.
        for w in result.history.windows(2) {
            assert!(w[1].best_so_far >= w[0].best_so_far);
        }
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let env = env();
        let search = DdpgCompressionSearch::new(SearchConfig::quick_test());
        let a = search.run(&env).unwrap();
        let b = search.run(&env).unwrap();
        assert_eq!(a.best_policy, b.best_policy);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn zero_episodes_is_rejected() {
        let env = env();
        let search =
            DdpgCompressionSearch::new(SearchConfig { episodes: 0, ..SearchConfig::quick_test() });
        assert!(matches!(search.run(&env), Err(SearchError::EmptySearch)));
    }
}
