//! The decision interface between the event-loop simulator and an exit
//! selection strategy (static LUT, greedy, or the runtime Q-learning agent).

/// Everything a policy can observe when an event arrives (the Q-learning
/// state of Section IV plus the per-exit costs it needs to reason about
/// affordability).
#[derive(Debug, Clone, PartialEq)]
pub struct EventContext {
    /// Sequential event identifier.
    pub event_id: usize,
    /// Arrival time, seconds.
    pub time_s: f64,
    /// Energy currently stored, millijoules.
    pub available_energy_mj: f64,
    /// Storage capacity, millijoules.
    pub capacity_mj: f64,
    /// Charging-efficiency observable in `[0, 1]` (recent harvested power
    /// relative to the trace's peak).
    pub charging_efficiency: f64,
    /// Energy cost of running each exit from scratch, millijoules.
    pub exit_energy_mj: Vec<f64>,
    /// Predicted accuracy of each exit, in `[0, 1]`.
    pub exit_accuracy: Vec<f64>,
}

impl EventContext {
    /// Stored energy as a fraction of capacity, in `[0, 1]`.
    pub fn energy_fraction(&self) -> f64 {
        if self.capacity_mj <= 0.0 {
            0.0
        } else {
            (self.available_energy_mj / self.capacity_mj).clamp(0.0, 1.0)
        }
    }

    /// The deepest exit whose from-scratch energy cost fits the currently
    /// available energy, if any.
    pub fn deepest_affordable_exit(&self) -> Option<usize> {
        self.exit_energy_mj
            .iter()
            .enumerate()
            .filter(|(_, &cost)| cost <= self.available_energy_mj + 1e-12)
            .map(|(i, _)| i)
            .next_back()
    }

    /// Returns `true` when exit `exit` is affordable right now.
    pub fn affordable(&self, exit: usize) -> bool {
        self.exit_energy_mj
            .get(exit)
            .map(|&cost| cost <= self.available_energy_mj + 1e-12)
            .unwrap_or(false)
    }
}

/// Everything a policy can observe when deciding whether to continue an
/// inference to the next exit (the second Q-table's state in Section IV).
#[derive(Debug, Clone, PartialEq)]
pub struct ContinueContext {
    /// Event identifier.
    pub event_id: usize,
    /// The exit that just produced a result.
    pub current_exit: usize,
    /// The next (deeper) exit the inference could continue to.
    pub next_exit: usize,
    /// Normalised confidence of the current result, in `[0, 1]`.
    pub confidence: f64,
    /// Energy still stored after the current inference, millijoules.
    pub available_energy_mj: f64,
    /// Storage capacity, millijoules.
    pub capacity_mj: f64,
    /// Additional energy the continuation would cost, millijoules.
    pub incremental_energy_mj: f64,
}

impl ContinueContext {
    /// Remaining energy as a fraction of capacity.
    pub fn energy_fraction(&self) -> f64 {
        if self.capacity_mj <= 0.0 {
            0.0
        } else {
            (self.available_energy_mj / self.capacity_mj).clamp(0.0, 1.0)
        }
    }

    /// Returns `true` when the continuation is affordable.
    pub fn affordable(&self) -> bool {
        self.incremental_energy_mj <= self.available_energy_mj + 1e-12
    }
}

/// What the simulator reports back after an event is resolved, so learning
/// policies can update themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct EventFeedback {
    /// Event identifier.
    pub event_id: usize,
    /// The exit chosen initially, or `None` when the policy skipped / the
    /// event was missed.
    pub chosen_exit: Option<usize>,
    /// The exit that produced the final result (differs from `chosen_exit`
    /// after an incremental inference), or `None` for missed events.
    pub final_exit: Option<usize>,
    /// Expected accuracy of the final exit (0 for missed events) — the reward
    /// `r = Acc_a` of Eq. (16).
    pub expected_accuracy: f64,
    /// Whether the sampled classification was actually correct.
    pub correct: bool,
    /// Energy spent on this event, millijoules.
    pub energy_spent_mj: f64,
    /// Whether the event was missed.
    pub missed: bool,
}

/// The decision an exit policy makes when an event arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitChoice {
    /// Do not attempt inference for this event (it will count as missed).
    Skip,
    /// Run inference up to the given exit.
    Exit(usize),
}

/// An exit-selection strategy driven by the event-loop simulator.
///
/// All methods take `&mut self` so learning policies (the runtime Q-learning
/// agent) can carry state between events; stateless policies simply ignore the
/// mutability.
pub trait ExitPolicy {
    /// Chooses the exit for a newly arrived event.
    fn choose_exit(&mut self, ctx: &EventContext) -> ExitChoice;

    /// Decides whether to continue a low-confidence result to the next exit.
    /// The default declines.
    fn choose_continue(&mut self, _ctx: &ContinueContext) -> bool {
        false
    }

    /// Receives the outcome of the event (reward signal). The default ignores
    /// it.
    fn observe_outcome(&mut self, _feedback: &EventFeedback) {}

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &str {
        "policy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(available: f64) -> EventContext {
        EventContext {
            event_id: 0,
            time_s: 0.0,
            available_energy_mj: available,
            capacity_mj: 5.0,
            charging_efficiency: 0.4,
            exit_energy_mj: vec![0.2, 0.8, 1.6],
            exit_accuracy: vec![0.62, 0.69, 0.70],
        }
    }

    #[test]
    fn deepest_affordable_exit_respects_costs() {
        assert_eq!(ctx(0.1).deepest_affordable_exit(), None);
        assert_eq!(ctx(0.3).deepest_affordable_exit(), Some(0));
        assert_eq!(ctx(1.0).deepest_affordable_exit(), Some(1));
        assert_eq!(ctx(3.0).deepest_affordable_exit(), Some(2));
        assert!(ctx(1.0).affordable(1));
        assert!(!ctx(1.0).affordable(2));
        assert!(!ctx(1.0).affordable(9));
    }

    #[test]
    fn energy_fraction_is_clamped() {
        assert!((ctx(2.5).energy_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ctx(99.0).energy_fraction(), 1.0);
        let mut c = ctx(1.0);
        c.capacity_mj = 0.0;
        assert_eq!(c.energy_fraction(), 0.0);
    }

    #[test]
    fn continue_context_affordability() {
        let cc = ContinueContext {
            event_id: 1,
            current_exit: 0,
            next_exit: 1,
            confidence: 0.3,
            available_energy_mj: 0.5,
            capacity_mj: 5.0,
            incremental_energy_mj: 0.6,
        };
        assert!(!cc.affordable());
        assert!((cc.energy_fraction() - 0.1).abs() < 1e-12);
        let cc2 = ContinueContext { incremental_energy_mj: 0.4, ..cc };
        assert!(cc2.affordable());
    }

    #[test]
    fn default_trait_methods_are_benign() {
        struct Always0;
        impl ExitPolicy for Always0 {
            fn choose_exit(&mut self, _ctx: &EventContext) -> ExitChoice {
                ExitChoice::Exit(0)
            }
        }
        let mut p = Always0;
        assert_eq!(p.choose_exit(&ctx(1.0)), ExitChoice::Exit(0));
        assert!(!p.choose_continue(&ContinueContext {
            event_id: 0,
            current_exit: 0,
            next_exit: 1,
            confidence: 0.0,
            available_energy_mj: 9.0,
            capacity_mj: 9.0,
            incremental_energy_mj: 0.1,
        }));
        p.observe_outcome(&EventFeedback {
            event_id: 0,
            chosen_exit: Some(0),
            final_exit: Some(0),
            expected_accuracy: 0.6,
            correct: true,
            energy_spent_mj: 0.2,
            missed: false,
        });
        assert_eq!(p.name(), "policy");
    }
}
