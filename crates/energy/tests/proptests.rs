//! Property-based tests of the energy-harvesting substrate.

use ie_energy::test_support::seeded_rng;
use ie_energy::{
    fork_rng, fork_seed, ConstantTrace, EnergyStorage, EventDistribution, EventGenerator,
    HarvestSimulator, PiecewiseTrace, PowerTrace, SolarTrace,
};
use proptest::prelude::*;
use rand::{Rng, RngCore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trapezoidal energy integration is additive over adjacent intervals and
    /// non-negative for every trace type.
    #[test]
    fn trace_energy_is_additive_and_nonnegative(seed in 0u64..50, t0 in 0.0f64..40_000.0, dt1 in 1.0f64..20_000.0, dt2 in 1.0f64..20_000.0) {
        let traces: Vec<Box<dyn PowerTrace>> = vec![
            Box::new(ConstantTrace::new(1.3, 86_400.0)),
            Box::new(SolarTrace::builder().seed(seed).build()),
            Box::new(PiecewiseTrace::from_points(vec![(0.0, 0.0), (40_000.0, 2.0), (86_400.0, 0.5)]).expect("valid")),
        ];
        for trace in &traces {
            let a = trace.energy_mj(t0, t0 + dt1);
            let b = trace.energy_mj(t0 + dt1, t0 + dt1 + dt2);
            let whole = trace.energy_mj(t0, t0 + dt1 + dt2);
            prop_assert!(a >= 0.0 && b >= 0.0);
            // The trapezoidal integrator samples on a 1-second grid anchored at
            // the interval start, so splitting an interval shifts the grid and
            // additivity only holds up to the discretisation error (bounded by
            // a couple of samples around the split point and the trace's
            // per-minute steps).
            prop_assert!(
                (a + b - whole).abs() < 1e-3 * (1.0 + whole) + 0.1,
                "additivity: {a} + {b} vs {whole}"
            );
        }
    }

    /// The storage level never exceeds the capacity and never goes negative,
    /// and the stored energy never exceeds efficiency × harvested energy.
    #[test]
    fn storage_never_creates_energy(
        capacity in 1.0f64..50.0,
        efficiency in 0.1f64..1.0,
        steps in proptest::collection::vec((0.0f64..5.0, 0.0f64..5.0), 1..100),
    ) {
        let mut storage = EnergyStorage::new(capacity, efficiency);
        let mut harvested = 0.0;
        let mut consumed = 0.0;
        for (h, c) in steps {
            harvested += h;
            storage.harvest(h);
            if storage.can_supply(c) {
                storage.consume(c).expect("supply was checked");
                consumed += c;
            }
            prop_assert!(storage.level_mj() >= -1e-12);
            prop_assert!(storage.level_mj() <= capacity + 1e-9);
        }
        prop_assert!(consumed <= harvested * efficiency + 1e-6, "cannot consume more than was stored");
        prop_assert!(storage.conservation_error_mj() < 1e-6);
    }

    /// Event generation always produces the requested number of sorted,
    /// in-range events for every distribution.
    #[test]
    fn event_generation_is_well_formed(count in 0usize..300, duration in 10.0f64..100_000.0, seed in 0u64..100) {
        for distribution in [
            EventDistribution::Uniform,
            EventDistribution::Poisson,
            EventDistribution::Clustered { center_fraction: 0.4, spread_fraction: 0.1 },
        ] {
            let events = EventGenerator::new(distribution, seed).generate(count, duration);
            prop_assert_eq!(events.len(), count);
            prop_assert!(events.windows(2).all(|w| w[0].time_s <= w[1].time_s));
            prop_assert!(events.iter().all(|e| e.time_s >= 0.0 && e.time_s < duration));
            prop_assert!(events.iter().enumerate().all(|(i, e)| e.id == i));
        }
    }

    /// Advancing the harvest simulator monotonically accumulates time and the
    /// charging-efficiency observable stays in [0, 1].
    #[test]
    fn simulator_time_and_efficiency_are_sane(seed in 0u64..30, hops in proptest::collection::vec(0.0f64..5_000.0, 1..40)) {
        let mut sim = HarvestSimulator::new(
            Box::new(SolarTrace::builder().seed(seed).build()),
            EnergyStorage::new(10.0, 0.9),
        );
        let mut t = 0.0;
        for hop in hops {
            t += hop;
            sim.advance_to(t);
            prop_assert!((sim.now_s() - t).abs() < 1e-9);
            let eff = sim.charging_efficiency();
            prop_assert!((0.0..=1.0).contains(&eff));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bookkeeping contract mirrored by the cross-crate
    /// `metrics_are_consistent_across_every_system` test, checked directly on
    /// the storage: the level stays in `[0, capacity]` at every step, total
    /// consumption never exceeds `efficiency × harvested + initial`, and the
    /// conservation identity (initial + stored = level + consumed,
    /// stored + wasted = harvested) closes.
    #[test]
    fn storage_bookkeeping_matches_the_metrics_contract(
        initial in 0.0f64..30.0,
        capacity in 1.0f64..50.0,
        efficiency in 0.1f64..1.0,
        ops in proptest::collection::vec((0.0f64..4.0, 0.0f64..3.0), 1..150),
    ) {
        let mut storage = EnergyStorage::new(capacity, efficiency).with_initial_level(initial);
        let initial_level = storage.initial_level_mj();
        prop_assert!(initial_level <= capacity + 1e-12);
        for (harvest, consume) in ops {
            storage.harvest(harvest);
            if storage.can_supply(consume) {
                storage.consume(consume).expect("supply was checked");
            }
            prop_assert!(storage.level_mj() >= 0.0, "level must never go negative");
            prop_assert!(storage.level_mj() <= capacity + 1e-9, "level must never exceed capacity");
            prop_assert!(
                storage.total_consumed_mj()
                    <= storage.total_harvested_mj() * efficiency + initial_level + 1e-6,
                "consumed {} must not exceed stored-side supply {}",
                storage.total_consumed_mj(),
                storage.total_harvested_mj() * efficiency + initial_level
            );
            prop_assert!(storage.total_wasted_mj() >= -1e-12);
        }
        prop_assert!(storage.conservation_error_mj() < 1e-6);
    }

    /// Hierarchical RNG forks for distinct device paths never collide on the
    /// first 64 draws: the streams of any two different `[device, purpose]`
    /// paths under the same master seed are pairwise distinct, and so are the
    /// streams of the same path under different masters.
    #[test]
    fn distinct_fork_paths_never_collide_on_the_first_64_draws(
        master in any::<u64>(),
        device_a in 0u64..1_000_000,
        device_b in 0u64..1_000_000,
        purpose_a in 0u64..8,
        purpose_b in 0u64..8,
    ) {
        prop_assume!((device_a, purpose_a) != (device_b, purpose_b));
        let draws = |mut rng: rand::rngs::StdRng| -> Vec<u64> {
            (0..64).map(|_| rng.next_u64()).collect()
        };
        let a = draws(fork_rng(master, &[device_a, purpose_a]));
        let b = draws(fork_rng(master, &[device_b, purpose_b]));
        prop_assert_ne!(&a, &b, "distinct paths must yield distinct streams");
        // Replaying the same path reproduces the stream bit-for-bit.
        prop_assert_eq!(&a, &draws(fork_rng(master, &[device_a, purpose_a])));
        // A different master decorrelates even an identical path.
        let other = draws(fork_rng(master.wrapping_add(1), &[device_a, purpose_a]));
        prop_assert_ne!(&a, &other);
        prop_assert_ne!(
            fork_seed(master, &[device_a, purpose_a]),
            fork_seed(master, &[device_b, purpose_b])
        );
    }

    /// Generated solar traces are physical: every sample is non-negative and
    /// bounded by the configured peak (up to the multiplicative noise), and
    /// the trace integrates to a non-negative daily energy. Seeds come from
    /// the shared seeded helper so reruns see the same traces.
    #[test]
    fn solar_trace_generation_is_physical(offset in 0u64..1000, noise in 0.0f64..0.5) {
        let seed = seeded_rng(None).gen::<u64>().wrapping_add(offset);
        let trace = SolarTrace::builder().seed(seed).noise_fraction(noise).build();
        let peak_bound = 2.0 * (1.0 + 6.0 * noise) + 1e-9;
        for (i, &p) in trace.samples().iter().enumerate() {
            prop_assert!(p >= 0.0, "sample {i} is negative: {p}");
            prop_assert!(p <= peak_bound, "sample {i} exceeds the noisy peak bound: {p}");
        }
        let daily = trace.energy_mj(0.0, trace.duration_s());
        prop_assert!(daily >= 0.0);
        prop_assert!((trace.mean_power_mw() - daily / trace.duration_s()).abs() < 1e-9);
    }
}
