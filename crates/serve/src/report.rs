//! Serving-run statistics: what the bench family reports and what the
//! operator watches. Everything derived from the *virtual* clock (queue
//! waits, batch fill, the shed/degraded/retried/restarted counters, the
//! per-exit histogram and the deadline-met goodput numerator) is
//! deterministic for a fixed request stream and chaos seed; the latency
//! percentiles and the throughput/goodput rates fold in measured compute
//! time and are machine-dependent by nature.

/// Aggregate statistics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests handed to the server (replay: stream length; live: submit
    /// calls). The conservation invariant partitions exactly this count.
    pub submitted: usize,
    /// Requests admitted and answered with a prediction.
    pub served: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Requests shed by the overload layer (full queue, eviction, unmeetable
    /// deadline, or retry exhaustion) — see [`crate::ShedReason`].
    pub shed: usize,
    /// Served requests whose exit was lowered by degradation.
    pub degraded: usize,
    /// Request re-executions scheduled after a worker loss (a re-enqueued
    /// batch counts each of its members once).
    pub retried: usize,
    /// Worker losses caught by supervision (each one recycled its plan and
    /// restarted the worker loop).
    pub restarted: usize,
    /// Injected worker stalls survived.
    pub stalled: usize,
    /// Scheduled requests whose completion met their latency budget — the
    /// goodput numerator. Replay mode counts this on the deterministic
    /// service model; live mode on measured latency.
    pub deadline_met: usize,
    /// Served responses per exit index (length = number of exits).
    pub per_exit: Vec<usize>,
    /// Number of closed batching windows.
    pub batches: usize,
    /// Mean requests per batch (0 when no batch closed).
    pub mean_batch_fill: f64,
    /// Median queue wait on the virtual clock (deterministic).
    pub wait_p50_s: f64,
    /// 99th-percentile queue wait on the virtual clock (deterministic).
    pub wait_p99_s: f64,
    /// Median request latency — queue wait plus compute, compute measured.
    pub latency_p50_s: f64,
    /// 99th-percentile request latency.
    pub latency_p99_s: f64,
    /// Served requests per second of modeled makespan (raw throughput —
    /// counts deadline-missing answers too).
    pub throughput_rps: f64,
    /// Deadline-meeting requests per second of modeled makespan. Goodput is
    /// the number overload protection actually defends: shedding or
    /// degrading requests sacrifices raw throughput (and accuracy) to keep
    /// this from collapsing.
    pub goodput_rps: f64,
    /// Total measured compute across all batches (seconds).
    pub compute_s: f64,
}

impl ServeReport {
    /// A report for a run that served nothing.
    pub fn empty() -> Self {
        ServeReport {
            submitted: 0,
            served: 0,
            rejected: 0,
            shed: 0,
            degraded: 0,
            retried: 0,
            restarted: 0,
            stalled: 0,
            deadline_met: 0,
            per_exit: Vec::new(),
            batches: 0,
            mean_batch_fill: 0.0,
            wait_p50_s: 0.0,
            wait_p99_s: 0.0,
            latency_p50_s: 0.0,
            latency_p99_s: 0.0,
            throughput_rps: 0.0,
            goodput_rps: 0.0,
            compute_s: 0.0,
        }
    }

    /// The request-conservation invariant: every submitted request was
    /// answered exactly once — served, rejected, or shed. Both serving modes
    /// assert this before returning a report; it is re-checked end-to-end by
    /// the chaos tests and the CI chaos matrix.
    pub fn conservation_holds(&self) -> bool {
        self.served + self.rejected + self.shed == self.submitted
            && self.per_exit.iter().sum::<usize>() == self.served
    }
}

/// Nearest-rank percentile of an unsorted sample set.
///
/// The rule, stated precisely so callers can rely on the edge cases:
///
/// * `q` is clamped to `0.0..=1.0`; a non-finite `q` (NaN, ±∞ — only
///   possible from upstream arithmetic gone wrong) is treated as `0.0`
///   rather than poisoning the rank computation.
/// * The result is always an element of `values` — nearest-rank, no
///   interpolation: element `⌈q·n⌉` (1-indexed) of the sorted sample, with
///   `q = 0` mapping to the minimum and `q = 1` to the maximum.
/// * An empty sample returns `0.0` (the neutral report value), and a
///   single-element sample returns that element for every `q`.
/// * Values sort by IEEE-754 total order (`f64::total_cmp`), so a stray NaN
///   sorts above `+∞` deterministically instead of panicking; duplicates
///   are kept and count toward ranks like any other element.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let q = if q.is_finite() { q.clamp(0.0, 1.0) } else { 0.0 };
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0, "input need not be sorted");
    }

    #[test]
    fn percentile_of_empty_sample_is_zero_for_every_q() {
        for q in [0.0, 0.5, 0.99, 1.0, -3.0, f64::NAN] {
            assert_eq!(percentile(&[], q), 0.0);
        }
    }

    #[test]
    fn percentile_of_single_element_is_that_element_for_every_q() {
        for q in [0.0, 0.25, 0.5, 0.99, 1.0, 7.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(percentile(&[42.5], q), 42.5, "q={q}");
        }
    }

    #[test]
    fn percentile_clamps_out_of_range_and_non_finite_q() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, -0.5), 1.0, "q below 0 clamps to the minimum");
        assert_eq!(percentile(&v, 2.0), 4.0, "q above 1 clamps to the maximum");
        assert_eq!(percentile(&v, f64::NAN), 1.0, "NaN q is treated as 0");
        assert_eq!(percentile(&v, f64::NEG_INFINITY), 1.0);
        assert_eq!(percentile(&v, f64::INFINITY), 1.0, "∞ is non-finite, treated as 0");
    }

    #[test]
    fn percentile_handles_duplicate_heavy_samples() {
        // 90 zeros and 10 ones: the p50 rank lands deep in the zeros, p99 in
        // the ones — duplicates count toward ranks like any other element.
        let mut v = vec![0.0; 90];
        v.extend(vec![1.0; 10]);
        assert_eq!(percentile(&v, 0.50), 0.0);
        assert_eq!(percentile(&v, 0.90), 0.0, "rank 90 is the last zero");
        assert_eq!(percentile(&v, 0.91), 1.0);
        assert_eq!(percentile(&v, 0.99), 1.0);
        let all_same = vec![7.0; 33];
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(percentile(&all_same, q), 7.0);
        }
    }

    #[test]
    fn percentile_orders_non_finite_values_totally_instead_of_panicking() {
        let v = [1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert!(percentile(&v, 1.0).is_nan(), "NaN sorts above +inf in total order");
    }

    #[test]
    fn conservation_partitions_submitted() {
        let mut r = ServeReport::empty();
        assert!(r.conservation_holds(), "the empty report conserves trivially");
        r.submitted = 10;
        r.served = 6;
        r.rejected = 3;
        r.shed = 1;
        r.per_exit = vec![2, 4];
        assert!(r.conservation_holds());
        r.shed = 2;
        assert!(!r.conservation_holds(), "double-counting must be caught");
        r.shed = 1;
        r.per_exit = vec![2, 3];
        assert!(!r.conservation_holds(), "histogram must sum to served");
    }
}
