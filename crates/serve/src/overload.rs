//! Overload protection for the serving loop: a **bounded admission queue**
//! with pluggable shed policies, planned deterministically on the virtual
//! clock.
//!
//! The paper's multi-exit network is a built-in graceful-degradation knob:
//! under pressure the runtime can take an *earlier* exit instead of dropping
//! the request outright — exactly the energy rule, with queue pressure as
//! the resource. This module turns that knob into a load-shedding actuator
//! for the server:
//!
//! * [`ShedPolicy::Reject`] — a full queue sheds the newcomer;
//! * [`ShedPolicy::DropOldest`] — a full queue sheds the oldest *queued*
//!   request to make room for the newcomer (freshness-first);
//! * [`ShedPolicy::Degrade`] — queue pressure and the request's remaining
//!   deadline cap the admitted exit at a shallower one (the multi-exit
//!   network as the actuator); only a *completely* full queue still sheds.
//!
//! [`plan_overload`] is the pure replay-mode planner: a single pass over the
//! arrival-ordered stream that composes batching windows (the same close
//! rule as [`compose_batches`]), models service on a fixed number of
//! *virtual* servers using the admission table's **predicted** per-exit
//! costs, and applies the shed policy against the modeled backlog. Because
//! the model never reads a wall clock, a thread count or a measured compute
//! time, the plan — and therefore every response — is byte-identical across
//! worker counts and repeated runs. The live server applies the same
//! policies against its real queue instead (see `server.rs`); there the
//! pressure signal is genuinely racy, which is the honest closed-loop
//! behaviour.
//!
//! Conservation invariant: every request gets **exactly one** outcome —
//! scheduled, rejected (admission) or shed (overload) — and the planned
//! batches contain exactly the scheduled requests, each exactly once, in
//! arrival order. [`OverloadPlan::check_conservation`] states it
//! mechanically; the proptests in `tests/overload_proptests.rs` hold it over
//! random streams, policies and capacities.
//!
//! [`compose_batches`]: crate::compose_batches

use crate::window::WindowConfig;
use crate::{Result, ServeError};
use ie_runtime::deepest_affordable;

/// How the bounded admission queue sheds load when it is full (and, for
/// [`ShedPolicy::Degrade`], how it degrades before it is full).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// A full queue sheds the arriving request.
    Reject,
    /// A full queue sheds the oldest still-queued request and admits the
    /// newcomer. When every backlogged request is already in service (none
    /// can be recalled), the newcomer is shed like [`ShedPolicy::Reject`].
    DropOldest,
    /// Queue pressure and remaining deadline cap the admitted exit at a
    /// shallower one (see [`pressure_exit_cap`]); a full queue still sheds
    /// the newcomer, and a request whose remaining budget no longer covers
    /// even the shallowest exit is shed as deadline-unmeetable.
    Degrade,
}

impl ShedPolicy {
    /// Parses the `IE_SERVE_SHED` spelling (`reject`, `drop-oldest`,
    /// `degrade`).
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reject" => Some(ShedPolicy::Reject),
            "drop-oldest" | "drop_oldest" | "dropoldest" => Some(ShedPolicy::DropOldest),
            "degrade" => Some(ShedPolicy::Degrade),
            _ => None,
        }
    }

    /// The canonical spelling (`reject` / `drop-oldest` / `degrade`).
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::Degrade => "degrade",
        }
    }
}

/// Why an overload shed happened (carried in [`crate::Verdict::Shed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full on arrival.
    QueueFull,
    /// The request was queued, then evicted by a newer arrival under
    /// [`ShedPolicy::DropOldest`].
    DroppedOldest,
    /// Under [`ShedPolicy::Degrade`], the modeled remaining deadline no
    /// longer covered even the shallowest exit.
    DeadlineUnmeetable,
    /// The request's batch kept losing its worker and ran out of its retry
    /// budget (see `OverloadConfig::retry_budget`).
    RetryExhausted,
}

/// Configuration of the overload-protection layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Bounded admission-queue capacity (backlog: queued plus modeled
    /// in-service requests). `usize::MAX` (the default) is effectively
    /// unbounded and reproduces the pre-overload serving behaviour exactly.
    /// Must be at least 1.
    pub queue_cap: usize,
    /// What happens when the queue is full.
    pub policy: ShedPolicy,
    /// Virtual servers in the replay-mode service model. Deliberately
    /// **independent of the real worker count** — the model is what keeps
    /// replay outcomes byte-identical across 1 vs N workers.
    pub model_servers: usize,
    /// How many times a batch whose worker panicked is re-enqueued before
    /// its requests are shed as [`ShedReason::RetryExhausted`]. Each batch
    /// is re-enqueued exactly once per lost worker, never more.
    pub retry_budget: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_cap: usize::MAX,
            policy: ShedPolicy::Reject,
            model_servers: 1,
            retry_budget: 1,
        }
    }
}

impl OverloadConfig {
    /// Validates the capacity and model-server count.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero queue capacity or a
    /// zero virtual-server count.
    pub fn validate(&self) -> Result<()> {
        if self.queue_cap == 0 {
            return Err(ServeError::InvalidConfig(
                "overload queue capacity must be at least 1".into(),
            ));
        }
        if self.model_servers == 0 {
            return Err(ServeError::InvalidConfig(
                "overload service model needs at least one virtual server".into(),
            ));
        }
        Ok(())
    }

    /// Reads the `IE_SERVE_QUEUE_CAP` (0 or unset → unbounded) and
    /// `IE_SERVE_SHED` (`reject`/`drop-oldest`/`degrade`) knobs on top of
    /// the defaults. Unparsable values warn on stderr and keep the default,
    /// mirroring the `IE_*_THREADS` convention of never silently swallowing
    /// an override.
    pub fn from_env() -> Self {
        let mut cfg = OverloadConfig::default();
        if let Ok(raw) = std::env::var("IE_SERVE_QUEUE_CAP") {
            match raw.trim().parse::<usize>() {
                Ok(0) => {}
                Ok(cap) => cfg.queue_cap = cap,
                Err(_) => eprintln!(
                    "warning: ignoring invalid IE_SERVE_QUEUE_CAP={raw:?} (want a non-negative \
                     integer; 0 means unbounded)"
                ),
            }
        }
        if let Ok(raw) = std::env::var("IE_SERVE_SHED") {
            match ShedPolicy::parse(&raw) {
                Some(policy) => cfg.policy = policy,
                None => eprintln!(
                    "warning: ignoring invalid IE_SERVE_SHED={raw:?} (want \
                     reject|drop-oldest|degrade)"
                ),
            }
        }
        cfg
    }
}

/// The pressure half of [`ShedPolicy::Degrade`]: the deepest exit a request
/// may take when `backlog` of `queue_cap` slots are occupied, over a network
/// with `num_exits` exits.
///
/// The mapping is linear in the remaining headroom with a ceiling, so the
/// full depth survives until the queue is meaningfully loaded and the cap
/// walks down to the shallowest exit exactly at the last slot:
/// `cap = ceil((num_exits-1) · (queue_cap-1-backlog) / (queue_cap-1))`.
/// All-integer arithmetic — monotone non-increasing in `backlog` and
/// deterministic on every platform. A capacity of 1 (or an effectively
/// unbounded queue) never degrades: there is no pressure gradient to read.
pub fn pressure_exit_cap(backlog: usize, queue_cap: usize, num_exits: usize) -> usize {
    let deepest = num_exits.saturating_sub(1);
    if queue_cap <= 1 || queue_cap == usize::MAX || backlog >= queue_cap {
        return deepest;
    }
    (deepest * (queue_cap - 1 - backlog.min(queue_cap - 1))).div_ceil(queue_cap - 1)
}

/// What the overload planner decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Admission control (the latency-budget policy) rejected the request
    /// before the queue was consulted.
    Rejected,
    /// The overload layer shed the request.
    Shed(ShedReason),
    /// The request was enqueued and batched; `exit` is its final target
    /// after any degradation, `degraded` whether the cap actually bit.
    Scheduled {
        /// Final target exit (after degradation).
        exit: usize,
        /// Whether the overload layer lowered the admitted exit.
        degraded: bool,
    },
}

/// One planned batching window: original-stream positions with their final
/// exits, plus the modeled service interval.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedBatch {
    /// Arrival time of the first request in the window.
    pub open_s: f64,
    /// When the window closed (filled, or `open_s` + deadline).
    pub close_s: f64,
    /// `(position in the original request stream, final exit)` per member,
    /// in arrival order.
    pub members: Vec<(usize, usize)>,
    /// Modeled service cost: the deepest member exit's predicted cost
    /// (incremental inference pays the deepest distinct exit once).
    pub predicted_cost_s: f64,
    /// Modeled service start (close time, or when a virtual server frees).
    pub start_s: f64,
    /// Modeled completion (`start_s + predicted_cost_s`).
    pub done_s: f64,
}

/// The full deterministic overload plan for a replayed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadPlan {
    /// One outcome per request, aligned with the input stream.
    pub outcomes: Vec<AdmitOutcome>,
    /// The planned batches over the scheduled requests.
    pub batches: Vec<PlannedBatch>,
    /// Scheduled requests whose **modeled** completion met their budget
    /// (`done_s − arrival ≤ budget`): the deterministic goodput numerator.
    pub deadline_met: usize,
    /// Scheduled requests whose exit was lowered by degradation.
    pub degraded: usize,
}

impl OverloadPlan {
    /// Checks the conservation invariant: every request has exactly one
    /// outcome, and the batches contain exactly the scheduled positions,
    /// each exactly once, in arrival order.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_conservation(&self) -> std::result::Result<(), String> {
        let scheduled: Vec<usize> = (0..self.outcomes.len())
            .filter(|&i| matches!(self.outcomes[i], AdmitOutcome::Scheduled { .. }))
            .collect();
        let batched: Vec<usize> =
            self.batches.iter().flat_map(|b| b.members.iter().map(|&(i, _)| i)).collect();
        if batched != scheduled {
            return Err(format!(
                "batches hold positions {batched:?} but the scheduled set is {scheduled:?}"
            ));
        }
        for b in &self.batches {
            if b.members.is_empty() {
                return Err("empty planned batch".into());
            }
            for &(i, exit) in &b.members {
                match self.outcomes[i] {
                    AdmitOutcome::Scheduled { exit: e, .. } if e == exit => {}
                    ref other => {
                        return Err(format!(
                            "batch member {i} (exit {exit}) disagrees with outcome {other:?}"
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of scheduled (batched) requests.
    pub fn scheduled(&self) -> usize {
        self.batches.iter().map(|b| b.members.len()).sum()
    }

    /// Number of overload-shed requests (admission rejections excluded).
    pub fn shed(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, AdmitOutcome::Shed(_))).count()
    }
}

/// The deterministic single-pass overload planner for replay mode. Consumes
/// the arrival-ordered stream (`arrivals`, `budgets`), the per-request
/// admission decisions (strictly in arrival order, `None` = rejected), the
/// admission table's predicted per-exit costs, the batching window and the
/// overload configuration, and produces the [`OverloadPlan`].
///
/// With an unbounded queue this reduces exactly to
/// [`compose_batches`](crate::compose_batches) over the admitted sub-stream
/// (property-tested), so the overload layer is a strict extension of the
/// original serving semantics.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for an invalid window/overload
/// configuration or an admission decision beyond the cost table, and
/// [`ServeError::InvalidRequest`] for unsorted or non-finite arrivals or
/// mismatched input lengths.
pub fn plan_overload(
    arrivals: &[f64],
    budgets: &[f64],
    decisions: &[Option<usize>],
    exit_cost_s: &[f64],
    window: &WindowConfig,
    config: &OverloadConfig,
) -> Result<OverloadPlan> {
    window.validate()?;
    config.validate()?;
    if arrivals.len() != budgets.len() || arrivals.len() != decisions.len() {
        return Err(ServeError::InvalidRequest(format!(
            "{} arrivals, {} budgets, {} admission decisions — the stream views must align",
            arrivals.len(),
            budgets.len(),
            decisions.len()
        )));
    }
    if let Some(bad) = arrivals.iter().find(|a| !a.is_finite()) {
        return Err(ServeError::InvalidRequest(format!("non-finite arrival time {bad}")));
    }
    for (i, w) in arrivals.windows(2).enumerate() {
        if w[1] < w[0] {
            return Err(ServeError::InvalidRequest(format!(
                "arrivals must be non-decreasing: position {} at {} precedes position {} at {}",
                i + 1,
                w[1],
                i,
                w[0]
            )));
        }
    }
    let num_exits = exit_cost_s.len();
    if let Some(bad) = decisions.iter().flatten().find(|&&e| e >= num_exits) {
        return Err(ServeError::InvalidConfig(format!(
            "admission decided exit {bad} but the cost table covers {num_exits} exits"
        )));
    }

    let mut planner = Planner {
        exit_cost_s,
        server_free: vec![f64::NEG_INFINITY; config.model_servers],
        in_service: Vec::new(),
        batches: Vec::new(),
        open: Vec::new(),
        open_s: 0.0,
    };
    let mut outcomes = vec![AdmitOutcome::Rejected; arrivals.len()];
    let mut degraded_count = 0usize;
    for i in 0..arrivals.len() {
        let t = arrivals[i];
        // 1. A window whose deadline passed strictly before this arrival
        //    closes at that deadline (an arrival exactly at the deadline
        //    still joins — same edge rule as `compose_batches`)…
        if !planner.open.is_empty() && t > planner.open_s + window.deadline_s {
            planner.close_open_window(planner.open_s + window.deadline_s);
        }
        // 2. …and modeled service completed by now leaves the backlog.
        planner.in_service.retain(|&(done, _)| done > t);
        // 3. Admission control decided first, strictly in arrival order.
        let Some(admitted_exit) = decisions[i] else {
            outcomes[i] = AdmitOutcome::Rejected;
            continue;
        };
        // 4. The bounded queue: backlog = open window + modeled in-service.
        let backlog = planner.backlog();
        if backlog >= config.queue_cap {
            match config.policy {
                ShedPolicy::Reject | ShedPolicy::Degrade => {
                    outcomes[i] = AdmitOutcome::Shed(ShedReason::QueueFull);
                    continue;
                }
                ShedPolicy::DropOldest => {
                    if planner.open.is_empty() {
                        // The whole backlog is already in (modeled) service —
                        // nothing can be recalled, so the newcomer sheds.
                        outcomes[i] = AdmitOutcome::Shed(ShedReason::QueueFull);
                        continue;
                    }
                    let (evicted, _) = planner.open.remove(0);
                    outcomes[evicted] = AdmitOutcome::Shed(ShedReason::DroppedOldest);
                }
            }
        }
        // 5. Degradation: pressure and remaining deadline cap the exit.
        let mut exit = admitted_exit;
        if config.policy == ShedPolicy::Degrade {
            let cap = pressure_exit_cap(backlog, config.queue_cap, num_exits);
            let expected_wait = (planner.earliest_free() - t).max(0.0);
            let remaining = budgets[i] - expected_wait;
            let Some(affordable) = deepest_affordable(exit_cost_s, remaining) else {
                outcomes[i] = AdmitOutcome::Shed(ShedReason::DeadlineUnmeetable);
                continue;
            };
            exit = exit.min(cap).min(affordable);
        }
        let degraded = exit < admitted_exit;
        degraded_count += usize::from(degraded);
        outcomes[i] = AdmitOutcome::Scheduled { exit, degraded };
        // 6. Enqueue into the open window; a filled window closes now.
        if planner.open.is_empty() {
            planner.open_s = t;
        }
        planner.open.push((i, exit));
        if planner.open.len() == window.max_batch {
            planner.close_open_window(t);
        }
    }
    if !planner.open.is_empty() {
        planner.close_open_window(planner.open_s + window.deadline_s);
    }

    let deadline_met = planner
        .batches
        .iter()
        .flat_map(|b| b.members.iter().map(move |&(i, _)| (i, b.done_s)))
        .filter(|&(i, done)| done - arrivals[i] <= budgets[i])
        .count();
    Ok(OverloadPlan { outcomes, batches: planner.batches, deadline_met, degraded: degraded_count })
}

/// Internal planner state: the open window, the virtual servers and the
/// modeled in-service backlog.
struct Planner<'c> {
    exit_cost_s: &'c [f64],
    server_free: Vec<f64>,
    /// `(modeled completion, batch size)` of scheduled-but-unfinished
    /// batches; retired as the virtual clock passes their completion.
    in_service: Vec<(f64, usize)>,
    batches: Vec<PlannedBatch>,
    open: Vec<(usize, usize)>,
    open_s: f64,
}

impl Planner<'_> {
    fn backlog(&self) -> usize {
        self.open.len() + self.in_service.iter().map(|&(_, n)| n).sum::<usize>()
    }

    fn earliest_free(&self) -> f64 {
        self.server_free.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Closes the open window at `close_s` and schedules it on the earliest
    /// free virtual server for its predicted cost (the deepest member
    /// exit's cost — incremental inference pays the deepest exit once).
    fn close_open_window(&mut self, close_s: f64) {
        let members = std::mem::take(&mut self.open);
        let predicted_cost_s = members
            .iter()
            .map(|&(_, exit)| self.exit_cost_s[exit])
            .fold(f64::NEG_INFINITY, f64::max);
        let (slot, &soonest) = self
            .server_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one virtual server");
        let start_s = close_s.max(soonest);
        let done_s = start_s + predicted_cost_s;
        self.server_free[slot] = done_s;
        self.in_service.push((done_s, members.len()));
        self.batches.push(PlannedBatch {
            open_s: self.open_s,
            close_s,
            members,
            predicted_cost_s,
            start_s,
            done_s,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COSTS: [f64; 3] = [0.001, 0.004, 0.009];

    fn window(max_batch: usize, deadline_s: f64) -> WindowConfig {
        WindowConfig { max_batch, deadline_s }
    }

    fn all_admitted(n: usize, exit: usize) -> Vec<Option<usize>> {
        vec![Some(exit); n]
    }

    #[test]
    fn zero_capacity_and_zero_servers_are_config_errors() {
        let bad = OverloadConfig { queue_cap: 0, ..OverloadConfig::default() };
        assert!(matches!(bad.validate(), Err(ServeError::InvalidConfig(_))));
        let bad = OverloadConfig { model_servers: 0, ..OverloadConfig::default() };
        assert!(bad.validate().is_err());
        assert!(OverloadConfig::default().validate().is_ok());
    }

    #[test]
    fn shed_policy_spellings_round_trip() {
        for p in [ShedPolicy::Reject, ShedPolicy::DropOldest, ShedPolicy::Degrade] {
            assert_eq!(ShedPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(ShedPolicy::parse("drop_oldest"), Some(ShedPolicy::DropOldest));
        assert_eq!(ShedPolicy::parse("DEGRADE"), Some(ShedPolicy::Degrade));
        assert_eq!(ShedPolicy::parse("lossless"), None);
    }

    #[test]
    fn pressure_cap_is_monotone_and_hits_both_ends() {
        let cap = 8;
        let exits = 4;
        let mut prev = usize::MAX;
        for backlog in 0..cap {
            let c = pressure_exit_cap(backlog, cap, exits);
            assert!(c <= prev, "cap must not grow with backlog");
            prev = c;
        }
        assert_eq!(pressure_exit_cap(0, cap, exits), 3, "empty queue keeps full depth");
        assert_eq!(pressure_exit_cap(cap - 1, cap, exits), 0, "last slot is shallowest-only");
        // No gradient to read: capacity 1 and unbounded queues never degrade.
        assert_eq!(pressure_exit_cap(0, 1, exits), 3);
        assert_eq!(pressure_exit_cap(1_000_000, usize::MAX, exits), 3);
    }

    #[test]
    fn unbounded_plan_matches_compose_batches() {
        let arrivals = [0.0, 0.0005, 0.001, 0.02, 0.05, 0.0501];
        let budgets = [1.0; 6];
        let cfg = OverloadConfig::default();
        let w = window(2, 0.004);
        let plan =
            plan_overload(&arrivals, &budgets, &all_admitted(6, 2), &COSTS, &w, &cfg).unwrap();
        plan.check_conservation().unwrap();
        let reference = crate::compose_batches(&arrivals, &w).unwrap();
        assert_eq!(plan.batches.len(), reference.len());
        for (p, r) in plan.batches.iter().zip(&reference) {
            assert_eq!(p.open_s, r.open_s);
            assert_eq!(p.close_s, r.close_s);
            assert_eq!(p.members.iter().map(|&(i, _)| i).collect::<Vec<_>>(), r.indices);
        }
        assert_eq!(plan.shed(), 0);
        assert_eq!(plan.degraded, 0);
    }

    #[test]
    fn reject_sheds_newcomers_when_the_queue_is_full() {
        // Capacity 2, slow service (deep exit, long window): the third and
        // later simultaneous arrivals shed.
        let arrivals = [0.0, 0.0, 0.0, 0.0];
        let budgets = [1.0; 4];
        let cfg = OverloadConfig {
            queue_cap: 2,
            policy: ShedPolicy::Reject,
            ..OverloadConfig::default()
        };
        let plan =
            plan_overload(&arrivals, &budgets, &all_admitted(4, 2), &COSTS, &window(8, 0.01), &cfg)
                .unwrap();
        plan.check_conservation().unwrap();
        assert_eq!(plan.outcomes[0], AdmitOutcome::Scheduled { exit: 2, degraded: false });
        assert_eq!(plan.outcomes[1], AdmitOutcome::Scheduled { exit: 2, degraded: false });
        assert_eq!(plan.outcomes[2], AdmitOutcome::Shed(ShedReason::QueueFull));
        assert_eq!(plan.outcomes[3], AdmitOutcome::Shed(ShedReason::QueueFull));
        assert_eq!(plan.scheduled(), 2);
        assert_eq!(plan.shed(), 2);
    }

    #[test]
    fn drop_oldest_evicts_the_queued_front_for_freshness() {
        let arrivals = [0.0, 0.0, 0.0];
        let budgets = [1.0; 3];
        let cfg = OverloadConfig {
            queue_cap: 2,
            policy: ShedPolicy::DropOldest,
            ..OverloadConfig::default()
        };
        let plan =
            plan_overload(&arrivals, &budgets, &all_admitted(3, 1), &COSTS, &window(8, 0.01), &cfg)
                .unwrap();
        plan.check_conservation().unwrap();
        assert_eq!(plan.outcomes[0], AdmitOutcome::Shed(ShedReason::DroppedOldest));
        assert!(matches!(plan.outcomes[1], AdmitOutcome::Scheduled { .. }));
        assert!(matches!(plan.outcomes[2], AdmitOutcome::Scheduled { .. }));
    }

    #[test]
    fn degrade_lowers_exits_under_pressure_and_sheds_only_at_full() {
        // Eight simultaneous deep-exit arrivals into a capacity-6 queue:
        // early ones keep depth, later ones degrade, overflow sheds.
        let n = 8;
        let arrivals = vec![0.0; n];
        let budgets = vec![1.0; n];
        let cfg = OverloadConfig {
            queue_cap: 6,
            policy: ShedPolicy::Degrade,
            ..OverloadConfig::default()
        };
        let plan = plan_overload(
            &arrivals,
            &budgets,
            &all_admitted(n, 2),
            &COSTS,
            &window(16, 0.01),
            &cfg,
        )
        .unwrap();
        plan.check_conservation().unwrap();
        let exits: Vec<Option<usize>> = plan
            .outcomes
            .iter()
            .map(|o| match o {
                AdmitOutcome::Scheduled { exit, .. } => Some(*exit),
                _ => None,
            })
            .collect();
        // Monotone non-increasing depth across the burst, then sheds.
        assert_eq!(exits[0], Some(2));
        assert!(plan.degraded > 0, "pressure must have lowered at least one exit");
        for w in exits.iter().take(6).collect::<Vec<_>>().windows(2) {
            assert!(w[1].unwrap() <= w[0].unwrap(), "degradation is monotone in backlog");
        }
        assert_eq!(plan.outcomes[6], AdmitOutcome::Shed(ShedReason::QueueFull));
        assert_eq!(plan.outcomes[7], AdmitOutcome::Shed(ShedReason::QueueFull));
    }

    #[test]
    fn degrade_sheds_deadline_unmeetable_requests() {
        // The first batch occupies the single virtual server for 9 ms; a
        // request arriving meanwhile with a 2 ms budget can no longer make
        // any exit once the modeled wait is subtracted.
        let arrivals = [0.0, 0.001];
        let budgets = [1.0, 0.002];
        let cfg = OverloadConfig {
            queue_cap: 100,
            policy: ShedPolicy::Degrade,
            ..OverloadConfig::default()
        };
        let plan =
            plan_overload(&arrivals, &budgets, &all_admitted(2, 2), &COSTS, &window(1, 0.0), &cfg)
                .unwrap();
        plan.check_conservation().unwrap();
        assert!(matches!(plan.outcomes[0], AdmitOutcome::Scheduled { exit: 2, .. }));
        assert_eq!(plan.outcomes[1], AdmitOutcome::Shed(ShedReason::DeadlineUnmeetable));
    }

    #[test]
    fn rejected_requests_never_occupy_queue_slots() {
        let arrivals = [0.0, 0.0, 0.0];
        let budgets = [1.0; 3];
        let decisions = vec![None, Some(0), Some(0)];
        let cfg = OverloadConfig {
            queue_cap: 2,
            policy: ShedPolicy::Reject,
            ..OverloadConfig::default()
        };
        let plan =
            plan_overload(&arrivals, &budgets, &decisions, &COSTS, &window(8, 0.01), &cfg).unwrap();
        plan.check_conservation().unwrap();
        assert_eq!(plan.outcomes[0], AdmitOutcome::Rejected);
        assert_eq!(plan.scheduled(), 2, "the rejection freed a slot for both admitted requests");
    }

    #[test]
    fn deadline_met_counts_modeled_goodput() {
        let arrivals = [0.0, 0.0];
        // First budget generously covers the modeled completion; the second
        // cannot (service alone takes 9 ms).
        let budgets = [1.0, 0.0095];
        let cfg = OverloadConfig::default();
        let plan =
            plan_overload(&arrivals, &budgets, &all_admitted(2, 2), &COSTS, &window(2, 0.01), &cfg)
                .unwrap();
        assert_eq!(plan.deadline_met, 2, "both fit: batch closes at 0 and takes 9 ms");
        let plan = plan_overload(
            &arrivals,
            &[1.0, 0.0085],
            &all_admitted(2, 2),
            &COSTS,
            &window(2, 0.01),
            &cfg,
        )
        .unwrap();
        assert_eq!(plan.deadline_met, 1, "an 8.5 ms budget misses the 9 ms modeled completion");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let cfg = OverloadConfig::default();
        let w = window(2, 0.01);
        assert!(matches!(
            plan_overload(&[1.0, 0.5], &[1.0, 1.0], &all_admitted(2, 0), &COSTS, &w, &cfg),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(plan_overload(&[0.0], &[], &all_admitted(1, 0), &COSTS, &w, &cfg).is_err());
        assert!(plan_overload(&[f64::NAN], &[1.0], &all_admitted(1, 0), &COSTS, &w, &cfg).is_err());
        assert!(matches!(
            plan_overload(&[0.0], &[1.0], &all_admitted(1, 7), &COSTS, &w, &cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }
}
