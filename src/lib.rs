//! Facade crate re-exporting the whole intermittent multi-exit inference workspace.
//!
//! See the README and `DESIGN.md` for the architecture overview. The typical entry
//! points are [`ie_core::ExperimentConfig`] and [`ie_core::DeployedModel`] for the
//! end-to-end flow and the sub-crates for individual subsystems.

pub use ie_baselines as baselines;
pub use ie_compress as compress;
pub use ie_core as core;
pub use ie_energy as energy;
pub use ie_mcu as mcu;
pub use ie_nn as nn;
pub use ie_rl as rl;
pub use ie_runtime as runtime;
pub use ie_search as search;
pub use ie_serve as serve;
pub use ie_tensor as tensor;
