//! The dynamic batching window: batches close at size `N` or deadline `T`,
//! whichever comes first.
//!
//! [`compose_batches`] is a pure function over arrival times, shared by the
//! deterministic replay path and the tests; the live server implements the
//! same close rule against the wall clock. Keeping the rule in one pure
//! function is what makes "no request is ever dropped or duplicated" a
//! property-testable statement.

use crate::{Result, ServeError};

/// Configuration of the dynamic batching window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Maximum requests per batch; reaching it closes the window early.
    /// Must be at least 1 — like
    /// `ie_core::EventLoopSimulator::run_batched`, which rejects a wake
    /// window of zero events, a window that can never admit a request is a
    /// configuration error, not a degenerate loop.
    pub max_batch: usize,
    /// Seconds a window stays open after its first request arrives. `0.0`
    /// batches only simultaneous arrivals. Must be finite and non-negative.
    pub deadline_s: f64,
}

impl WindowConfig {
    /// Validates the window parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `max_batch` is zero or
    /// `deadline_s` is negative or non-finite.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "batching window must admit at least one request".into(),
            ));
        }
        if !self.deadline_s.is_finite() || self.deadline_s < 0.0 {
            return Err(ServeError::InvalidConfig(format!(
                "window deadline must be finite and non-negative, got {}",
                self.deadline_s
            )));
        }
        Ok(())
    }
}

/// One closed batching window over an arrival-ordered request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBatch {
    /// Arrival time of the first request in the window.
    pub open_s: f64,
    /// When the window closed: the `max_batch`-th arrival when it filled,
    /// otherwise `open_s + deadline_s`.
    pub close_s: f64,
    /// Positions (into the arrival-ordered stream) of the batched requests.
    pub indices: Vec<usize>,
}

impl WindowBatch {
    /// Queue wait of the `k`-th request in this batch (seconds).
    pub fn wait_s(&self, arrival_s: f64) -> f64 {
        self.close_s - arrival_s
    }
}

/// Splits an arrival-ordered stream into dynamic batches: a window opens at
/// the first pending arrival and closes at `open + deadline` or as soon as
/// `max_batch` requests arrived, whichever comes first. Every position in
/// `0..arrivals.len()` lands in exactly one batch, in order — the windows
/// partition the stream — and no request ever waits longer than the
/// deadline.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for an invalid window and
/// [`ServeError::InvalidRequest`] when arrivals are non-finite or decrease.
pub fn compose_batches(arrivals: &[f64], config: &WindowConfig) -> Result<Vec<WindowBatch>> {
    config.validate()?;
    for (i, w) in arrivals.windows(2).enumerate() {
        if w[1] < w[0] {
            return Err(ServeError::InvalidRequest(format!(
                "arrivals must be non-decreasing: position {} at {} precedes position {} at {}",
                i + 1,
                w[1],
                i,
                w[0]
            )));
        }
    }
    if let Some(bad) = arrivals.iter().find(|a| !a.is_finite()) {
        return Err(ServeError::InvalidRequest(format!("non-finite arrival time {bad}")));
    }
    let mut batches = Vec::new();
    let mut start = 0;
    while start < arrivals.len() {
        let open_s = arrivals[start];
        let deadline = open_s + config.deadline_s;
        let mut end = start + 1;
        while end < arrivals.len() && end - start < config.max_batch && arrivals[end] <= deadline {
            end += 1;
        }
        let close_s = if end - start == config.max_batch {
            // Filled early: the window closes the moment the last slot fills.
            arrivals[end - 1]
        } else {
            deadline
        };
        batches.push(WindowBatch { open_s, close_s, indices: (start..end).collect() });
        start = end;
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_size_windows_and_bad_deadlines_are_config_errors() {
        assert!(matches!(
            WindowConfig { max_batch: 0, deadline_s: 0.1 }.validate(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(WindowConfig { max_batch: 1, deadline_s: -0.1 }.validate().is_err());
        assert!(WindowConfig { max_batch: 1, deadline_s: f64::NAN }.validate().is_err());
        assert!(WindowConfig { max_batch: 1, deadline_s: 0.0 }.validate().is_ok());
    }

    #[test]
    fn windows_close_at_size_or_deadline_whichever_first() {
        let cfg = WindowConfig { max_batch: 3, deadline_s: 1.0 };
        // 0.0,0.1,0.2 fill a batch (close at 0.2); 5.0 then waits out the
        // full deadline alone (close 6.0); 7.5,7.6 close at 8.5.
        let arrivals = [0.0, 0.1, 0.2, 5.0, 7.5, 7.6];
        let batches = compose_batches(&arrivals, &cfg).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].indices, vec![0, 1, 2]);
        assert_eq!(batches[0].close_s, 0.2, "a filled window closes at the last arrival");
        assert_eq!(batches[1].indices, vec![3]);
        assert_eq!(batches[1].close_s, 6.0, "an unfilled window waits out the deadline");
        assert_eq!(batches[2].indices, vec![4, 5]);
        assert_eq!(batches[2].close_s, 8.5);
        for b in &batches {
            for &i in &b.indices {
                let wait = b.wait_s(arrivals[i]);
                assert!((0.0..=cfg.deadline_s).contains(&wait), "wait {wait} within deadline");
            }
        }
    }

    #[test]
    fn a_zero_deadline_batches_only_simultaneous_arrivals() {
        let cfg = WindowConfig { max_batch: 8, deadline_s: 0.0 };
        let arrivals = [0.0, 0.0, 0.0, 1.0, 2.0];
        let batches = compose_batches(&arrivals, &cfg).unwrap();
        let sizes: Vec<usize> = batches.iter().map(|b| b.indices.len()).collect();
        assert_eq!(sizes, vec![3, 1, 1]);
    }

    #[test]
    fn unsorted_or_nonfinite_arrivals_are_rejected() {
        let cfg = WindowConfig { max_batch: 2, deadline_s: 1.0 };
        assert!(matches!(compose_batches(&[1.0, 0.5], &cfg), Err(ServeError::InvalidRequest(_))));
        assert!(compose_batches(&[0.0, f64::NAN], &cfg).is_err());
        assert!(compose_batches(&[], &cfg).unwrap().is_empty());
    }
}
