//! `ie-compress` — channel pruning, linear quantization and the accuracy /
//! cost models that drive the paper's nonuniform compression search.
//!
//! The crate has two halves:
//!
//! * **Mechanisms** that operate on real weights: magnitude-based channel
//!   pruning ([`pruning`]) and MSE-optimal linear quantization ([`quantize`]),
//!   plus [`apply`] which applies a whole [`CompressionPolicy`] to an
//!   [`ie_nn::MultiExitNetwork`] in place.
//! * **Models** that predict what a policy does to the deployed system
//!   without retraining: [`PolicyEvaluator`] turns a policy into per-exit
//!   FLOPs, model size and per-exit accuracy. Accuracy comes from an
//!   [`ExitAccuracyEstimator`]; the [`CalibratedAccuracyModel`] is anchored to
//!   the paper's reported CIFAR-10 numbers (see `DESIGN.md` for the
//!   substitution argument), while [`EmpiricalAccuracyEstimator`] measures a
//!   real network on a real dataset so the same code path also runs without
//!   the analytical shortcut.
//!
//! # Example
//!
//! ```
//! use ie_compress::{CalibratedAccuracyModel, CompressionPolicy, PolicyEvaluator};
//! use ie_nn::spec::lenet_multi_exit;
//!
//! let arch = lenet_multi_exit();
//! let evaluator = PolicyEvaluator::new(&arch, CalibratedAccuracyModel::for_paper_backbone());
//! let policy = CompressionPolicy::uniform(arch.compressible_layers().len(), 0.7, 4, 4)?;
//! let profile = evaluator.evaluate(&policy)?;
//! assert_eq!(profile.exit_flops.len(), 3);
//! assert!(profile.model_size_bytes < arch.model_size_bytes(32));
//! # Ok::<(), ie_compress::CompressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod apply;
mod error;
mod evaluator;
mod policy;
pub mod pruning;
pub mod quantize;
pub mod train;

pub use accuracy::{CalibratedAccuracyModel, EmpiricalAccuracyEstimator, ExitAccuracyEstimator};
pub use error::CompressError;
pub use evaluator::{CompressedProfile, PolicyEvaluator};
pub use policy::{CompressionPolicy, LayerPolicy};
pub use train::{finetune_compressed, FinetuneConfig, FinetuneOutcome};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CompressError>;
