//! `ie-baselines` — the comparison systems of Section V: SonicNet, SpArSeNet
//! and LeNet-Cifar.
//!
//! All three are *single-exit* networks executed by a SONIC-style task-based
//! intermittent runtime: an inference is split into tasks, each task is only
//! started when the capacitor holds enough energy for it (plus the checkpoint
//! write), and progress survives power failures. When the harvested energy is
//! weak this means an inference spans several power cycles and its latency is
//! dominated by waiting — which is exactly the behaviour the paper's
//! multi-exit approach eliminates.
//!
//! [`BaselineNetwork`] carries the published FLOPs / accuracy figures of each
//! baseline and [`BaselineRunner`] replays the same event sequence and power
//! trace used for the proposed approach, producing an
//! [`ie_core::SimulationReport`] so every system is scored with the same
//! metrics (IEpmJ, all-event accuracy, per-event latency).
//!
//! # Example
//!
//! ```
//! use ie_baselines::{BaselineNetwork, BaselineRunner};
//! use ie_core::ExperimentConfig;
//!
//! let config = ExperimentConfig::small_test();
//! let report = BaselineRunner::new(&config).run(&BaselineNetwork::lenet_cifar())?;
//! assert_eq!(report.total_events, config.num_events);
//! # Ok::<(), ie_baselines::BaselineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;
mod runner;

pub use error::BaselineError;
pub use network::BaselineNetwork;
pub use runner::BaselineRunner;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
