use crate::McuDevice;

/// Converts FLOPs into energy and latency on a particular device, and prices
/// checkpoint writes.
///
/// This is the single place where the paper's "1.5 mJ per million FLOPs" and
/// "FLOPs as the per-inference latency proxy" conventions are applied, so the
/// search, runtime and baselines all agree on costs.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    energy_per_mflop_mj: f64,
    flops_per_s: f64,
    nv_write_energy_per_byte_mj: f64,
    checkpoint_bytes: usize,
}

impl CostModel {
    /// Builds the cost model implied by a device description, with a default
    /// 256-byte checkpoint footprint (progress counters plus a small
    /// activation buffer, as in SONIC-style task systems).
    pub fn for_device(device: &McuDevice) -> Self {
        CostModel {
            energy_per_mflop_mj: device.energy_per_mflop_mj(),
            flops_per_s: device.effective_flops_per_s(),
            nv_write_energy_per_byte_mj: device.nv_write_energy_per_byte_mj(),
            checkpoint_bytes: 256,
        }
    }

    /// Overrides the checkpoint footprint in bytes.
    pub fn with_checkpoint_bytes(mut self, bytes: usize) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// Energy (mJ) consumed by an inference of `flops` FLOPs.
    pub fn inference_energy_mj(&self, flops: u64) -> f64 {
        flops as f64 / 1.0e6 * self.energy_per_mflop_mj
    }

    /// Compute latency (seconds) of an inference of `flops` FLOPs, ignoring
    /// any waiting for energy.
    pub fn inference_latency_s(&self, flops: u64) -> f64 {
        flops as f64 / self.flops_per_s
    }

    /// Energy (mJ) of writing one checkpoint to non-volatile memory.
    pub fn checkpoint_energy_mj(&self) -> f64 {
        self.checkpoint_bytes as f64 * self.nv_write_energy_per_byte_mj
    }

    /// Latency (seconds) of writing one checkpoint; modelled as proportional
    /// to its energy at the device's sleep-mode power envelope and therefore
    /// negligible next to compute, but non-zero so ablations can surface it.
    pub fn checkpoint_latency_s(&self) -> f64 {
        // FRAM writes run at bus speed; approximate 1 µs per byte.
        self.checkpoint_bytes as f64 * 1e-6
    }

    /// The checkpoint footprint in bytes.
    pub fn checkpoint_bytes(&self) -> usize {
        self.checkpoint_bytes
    }

    /// Energy per million FLOPs in millijoules.
    pub fn energy_per_mflop_mj(&self) -> f64 {
        self.energy_per_mflop_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_energy_constant_is_applied() {
        let c = CostModel::for_device(&McuDevice::msp432());
        assert!((c.inference_energy_mj(1_000_000) - 1.5).abs() < 1e-12);
        assert!((c.inference_energy_mj(445_200) - 0.6678).abs() < 1e-6);
        assert_eq!(c.inference_energy_mj(0), 0.0);
    }

    #[test]
    fn latency_scales_linearly_with_flops() {
        let c = CostModel::for_device(&McuDevice::msp432());
        let l1 = c.inference_latency_s(200_000);
        let l2 = c.inference_latency_s(400_000);
        assert!((l2 - 2.0 * l1).abs() < 1e-9);
        assert!(l1 > 0.0);
    }

    #[test]
    fn checkpoint_costs_are_small_but_positive() {
        let c = CostModel::for_device(&McuDevice::msp432());
        assert!(c.checkpoint_energy_mj() > 0.0);
        assert!(c.checkpoint_energy_mj() < c.inference_energy_mj(100_000));
        assert!(c.checkpoint_latency_s() < 0.01);
        let custom = c.clone().with_checkpoint_bytes(512);
        assert!(custom.checkpoint_energy_mj() > c.checkpoint_energy_mj());
    }
}
