//! Small helpers for printing aligned experiment tables.

/// Formats a row of a markdown-style table.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a header plus separator for a markdown-style table.
pub fn header(cells: &[&str]) -> String {
    let head = row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    let sep = row(&cells.iter().map(|_| "---".to_string()).collect::<Vec<_>>());
    format!("{head}\n{sep}")
}

/// Formats a ratio such as `3.6x`, guarding against division by zero.
pub fn ratio(ours: f64, baseline: f64) -> String {
    if baseline.abs() < 1e-12 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", ours / baseline)
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats FLOPs in millions with two decimals.
pub fn mflops(flops: f64) -> String {
    format!("{:.3}M", flops / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.501), "50.1%");
        assert_eq!(mflops(1_150_000.0), "1.150M");
        assert_eq!(ratio(0.9, 0.25), "3.60x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert!(header(&["a", "b"]).contains("---"));
        assert_eq!(row(&["x".into(), "y".into()]), "| x | y |");
    }
}
