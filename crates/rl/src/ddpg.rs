//! Deep deterministic policy gradient (DDPG) with small MLP actor/critic
//! networks, as used by the paper's compression agents.

use crate::{OrnsteinUhlenbeck, ReplayBuffer};
use ie_nn::{Mlp, OutputActivation, Result as NnResult};
use ie_tensor::Tensor;
use rand::Rng;

/// One experience tuple collected while exploring compression policies.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation before acting.
    pub state: Vec<f32>,
    /// Action taken (each component in `[0, 1]`).
    pub action: Vec<f32>,
    /// Scalar reward.
    pub reward: f32,
    /// Observation after acting.
    pub next_state: Vec<f32>,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

/// Hyper-parameters of a [`DdpgAgent`].
#[derive(Debug, Clone, PartialEq)]
pub struct DdpgConfig {
    /// Learning rate of the actor network.
    pub actor_lr: f32,
    /// Learning rate of the critic network.
    pub critic_lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak averaging coefficient τ for the target networks.
    pub tau: f32,
    /// Hidden-layer width of both networks.
    pub hidden: usize,
    /// Replay-buffer capacity.
    pub replay_capacity: usize,
    /// Initial Ornstein–Uhlenbeck noise magnitude.
    pub noise_sigma: f32,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            actor_lr: 1e-3,
            critic_lr: 1e-2,
            gamma: 0.95,
            tau: 0.01,
            hidden: 64,
            replay_capacity: 2_000,
            noise_sigma: 0.3,
        }
    }
}

/// A DDPG agent over a continuous action space in `[0, 1]^action_dim`.
///
/// The actor ends in a sigmoid so actions land directly in the unit box the
/// compression search expects (pruning rates, normalised bitwidths).
#[derive(Debug, Clone)]
pub struct DdpgAgent {
    actor: Mlp,
    critic: Mlp,
    target_actor: Mlp,
    target_critic: Mlp,
    noise: OrnsteinUhlenbeck,
    replay: ReplayBuffer<Transition>,
    config: DdpgConfig,
    state_dim: usize,
    action_dim: usize,
}

impl DdpgAgent {
    /// Creates an agent for the given state/action dimensions.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        state_dim: usize,
        action_dim: usize,
        config: DdpgConfig,
    ) -> Self {
        let actor = Mlp::new(
            rng,
            &[state_dim, config.hidden, config.hidden, action_dim],
            OutputActivation::Sigmoid,
        );
        let critic = Mlp::new(
            rng,
            &[state_dim + action_dim, config.hidden, config.hidden, 1],
            OutputActivation::Linear,
        );
        let target_actor = actor.clone();
        let target_critic = critic.clone();
        let noise = OrnsteinUhlenbeck::new(action_dim, 0.15, config.noise_sigma);
        let replay = ReplayBuffer::new(config.replay_capacity);
        DdpgAgent {
            actor,
            critic,
            target_actor,
            target_critic,
            noise,
            replay,
            config,
            state_dim,
            action_dim,
        }
    }

    /// Dimension of the observation vector.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Dimension of the action vector.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Anneals the exploration noise magnitude.
    pub fn set_noise_sigma(&mut self, sigma: f32) {
        self.noise.set_sigma(sigma);
    }

    /// Deterministic (exploitation) action for a state.
    ///
    /// # Errors
    ///
    /// Returns an error when `state` has the wrong dimension.
    pub fn act(&self, state: &[f32]) -> NnResult<Vec<f32>> {
        let s = Tensor::from_vec(state.to_vec(), &[state.len()]).map_err(ie_nn::NnError::from)?;
        Ok(self.actor.forward(&s)?.into_vec())
    }

    /// Exploratory action: the deterministic action plus OU noise, clamped to
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error when `state` has the wrong dimension.
    pub fn act_exploring<R: Rng + ?Sized>(
        &mut self,
        state: &[f32],
        rng: &mut R,
    ) -> NnResult<Vec<f32>> {
        let mut action = self.act(state)?;
        let noise = self.noise.sample(rng);
        for (a, n) in action.iter_mut().zip(noise) {
            *a = (*a + n).clamp(0.0, 1.0);
        }
        Ok(action)
    }

    /// Stores a transition in the replay buffer.
    pub fn observe(&mut self, transition: Transition) {
        self.replay.push(transition);
    }

    /// Resets the exploration noise (call at the start of each episode).
    pub fn begin_episode(&mut self) {
        self.noise.reset();
    }

    /// Critic value `Q(s, a)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the concatenated input has the wrong dimension.
    pub fn q_value(&self, state: &[f32], action: &[f32]) -> NnResult<f32> {
        let mut input = state.to_vec();
        input.extend_from_slice(action);
        let len = input.len();
        let x = Tensor::from_vec(input, &[len]).map_err(ie_nn::NnError::from)?;
        Ok(self.critic.forward(&x)?.as_slice()[0])
    }

    fn target_q(&self, state: &[f32]) -> NnResult<f32> {
        let s = Tensor::from_vec(state.to_vec(), &[state.len()]).map_err(ie_nn::NnError::from)?;
        let a = self.target_actor.forward(&s)?;
        let mut input = state.to_vec();
        input.extend_from_slice(a.as_slice());
        let len = input.len();
        let x = Tensor::from_vec(input, &[len]).map_err(ie_nn::NnError::from)?;
        Ok(self.target_critic.forward(&x)?.as_slice()[0])
    }

    /// Performs one mini-batch update of the critic and actor and soft-updates
    /// the target networks. Returns the mean critic TD error of the batch, or
    /// `None` when the replay buffer is still empty.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying networks.
    pub fn update<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        batch_size: usize,
    ) -> NnResult<Option<f32>> {
        if self.replay.is_empty() {
            return Ok(None);
        }
        let batch = self.replay.sample(rng, batch_size.max(1));
        let n = batch.len() as f32;

        // --- Critic update: minimise (Q(s,a) − y)² with y = r + γ·Q'(s', µ'(s')).
        let mut td_error_sum = 0.0;
        for t in &batch {
            let target = if t.done {
                t.reward
            } else {
                t.reward + self.config.gamma * self.target_q(&t.next_state)?
            };
            let mut input = t.state.clone();
            input.extend_from_slice(&t.action);
            let len = input.len();
            let x = Tensor::from_vec(input, &[len]).map_err(ie_nn::NnError::from)?;
            let q = self.critic.forward(&x)?.as_slice()[0];
            let td = q - target;
            td_error_sum += td.abs();
            let grad = Tensor::from_vec(vec![2.0 * td], &[1]).map_err(ie_nn::NnError::from)?;
            self.critic.backward(&x, &grad)?;
        }
        self.critic.apply_gradients(self.config.critic_lr / n);

        // --- Actor update: ascend ∇_a Q(s, µ(s)) ∇_θ µ(s).
        for t in &batch {
            let s = Tensor::from_vec(t.state.clone(), &[t.state.len()])
                .map_err(ie_nn::NnError::from)?;
            let action = self.actor.forward(&s)?;
            let mut input = t.state.clone();
            input.extend_from_slice(action.as_slice());
            let len = input.len();
            let x = Tensor::from_vec(input, &[len]).map_err(ie_nn::NnError::from)?;
            // dQ/d(input) through the critic; we only want the action part and
            // must not leave gradients behind in the critic.
            let ones = Tensor::from_vec(vec![1.0], &[1]).map_err(ie_nn::NnError::from)?;
            let dq_dinput = self.critic.backward(&x, &ones)?;
            self.critic.zero_grad();
            let dq_daction = &dq_dinput.as_slice()[t.state.len()..];
            // Gradient ascent on Q == descent on −Q.
            let grad =
                Tensor::from_vec(dq_daction.iter().map(|g| -g).collect(), &[self.action_dim])
                    .map_err(ie_nn::NnError::from)?;
            self.actor.backward(&s, &grad)?;
        }
        self.actor.apply_gradients(self.config.actor_lr / n);

        // --- Target network soft updates.
        self.target_actor.blend_from(&self.actor, self.config.tau);
        self.target_critic.blend_from(&self.critic, self.config.tau);

        Ok(Some(td_error_sum / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn actions_are_in_the_unit_box() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = DdpgAgent::new(&mut rng, 4, 3, DdpgConfig::default());
        let a = agent.act(&[0.1, 0.5, -0.3, 2.0]).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|v| (0.0..=1.0).contains(v)));
        let e = agent.act_exploring(&[0.1, 0.5, -0.3, 2.0], &mut rng).unwrap();
        assert!(e.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(agent.act(&[0.0; 3]).is_err(), "wrong state dimension must fail");
    }

    #[test]
    fn update_without_experience_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = DdpgAgent::new(&mut rng, 2, 1, DdpgConfig::default());
        assert_eq!(agent.update(&mut rng, 8).unwrap(), None);
    }

    #[test]
    fn agent_learns_a_simple_bandit() {
        // Reward = 1 − (a − 0.8)²: the optimal action is 0.8 regardless of state.
        let mut rng = StdRng::seed_from_u64(7);
        let config = DdpgConfig {
            actor_lr: 5e-3,
            critic_lr: 2e-2,
            gamma: 0.0,
            tau: 0.05,
            hidden: 24,
            replay_capacity: 512,
            noise_sigma: 0.4,
        };
        let mut agent = DdpgAgent::new(&mut rng, 1, 1, config);
        let state = vec![0.5f32];
        for episode in 0..60 {
            agent.begin_episode();
            agent.set_noise_sigma(0.4 * (1.0 - episode as f32 / 60.0) + 0.05);
            for _ in 0..10 {
                let a = agent.act_exploring(&state, &mut rng).unwrap();
                let reward = 1.0 - (a[0] - 0.8).powi(2);
                agent.observe(Transition {
                    state: state.clone(),
                    action: a,
                    reward,
                    next_state: state.clone(),
                    done: true,
                });
                agent.update(&mut rng, 32).unwrap();
            }
        }
        let final_action = agent.act(&state).unwrap()[0];
        assert!(
            (final_action - 0.8).abs() < 0.2,
            "agent should converge near 0.8, got {final_action}"
        );
    }

    #[test]
    fn q_values_track_observed_rewards() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = DdpgConfig { gamma: 0.0, critic_lr: 5e-2, ..DdpgConfig::default() };
        let mut agent = DdpgAgent::new(&mut rng, 1, 1, config);
        // Fixed state/action with constant reward 2.0.
        for _ in 0..200 {
            agent.observe(Transition {
                state: vec![0.0],
                action: vec![0.5],
                reward: 2.0,
                next_state: vec![0.0],
                done: true,
            });
            agent.update(&mut rng, 16).unwrap();
        }
        let q = agent.q_value(&[0.0], &[0.5]).unwrap();
        assert!((q - 2.0).abs() < 0.5, "critic should approach the reward, got {q}");
    }

    #[test]
    fn replay_is_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = DdpgConfig { replay_capacity: 16, ..DdpgConfig::default() };
        let mut agent = DdpgAgent::new(&mut rng, 1, 1, config);
        for i in 0..100 {
            agent.observe(Transition {
                state: vec![i as f32],
                action: vec![0.0],
                reward: 0.0,
                next_state: vec![0.0],
                done: false,
            });
        }
        assert_eq!(agent.replay_len(), 16);
    }
}
