//! SONIC-style task-based intermittent execution.
//!
//! Gobieski et al.'s SONIC (the paper's "SonicNet" baseline) splits a DNN
//! inference into tasks, checkpoints progress into non-volatile memory after
//! every task and therefore survives arbitrarily many power failures — at the
//! price of waiting, possibly for a very long time, until enough energy has
//! been harvested to finish all tasks. This module reproduces that execution
//! model over the [`ie_energy::HarvestSimulator`].
//!
//! Execution is a genuine reboot loop: every boot begins by recovering the
//! last committed [`crate::TwoBankCheckpoint`] record from NV memory, and a
//! power cut — natural starvation or one injected by a
//! [`FaultInjector`] — discards all volatile state (the running task index
//! and output digest) and re-enters recovery. Tasks that had run past the
//! last durable checkpoint re-execute, and that re-execution energy is
//! reported as [`ExecutionReport::wasted_reexecution_mj`].

use crate::checkpoint::{CheckpointRecord, TwoBankCheckpoint, RECORD_BYTES};
use crate::fault::{FaultInjector, TaskCut};
use crate::{CostModel, McuError, NonvolatileMemory, Result};
use ie_energy::HarvestSimulator;

/// Initial value of the running output digest (FNV-1a offset basis).
pub const DIGEST_INIT: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one completed task into the running output digest.
///
/// The digest is a stand-in for the inference's actual output bytes: it is
/// held in *volatile* state while tasks run, persisted only inside committed
/// checkpoint records, and depends on every task index in order — so a
/// recovery that skipped, repeated, or reordered a task relative to the last
/// durable checkpoint produces a different final digest. Bit-equality with
/// the fault-free run is therefore exactly the paper's "inference result
/// survives power failure" claim, made checkable.
fn mix_digest(digest: u64, task_index: u64, flops: u64) -> u64 {
    let mut d = digest ^ task_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    d = d.wrapping_mul(FNV_PRIME);
    d ^= flops;
    d.wrapping_mul(FNV_PRIME)
}

/// The output digest of running the first `upto` tasks of `graph` from a
/// fresh start — the reference value crash-recovery tests compare against.
pub fn task_digest(graph: &TaskGraph, upto: usize) -> u64 {
    graph
        .tasks()
        .iter()
        .take(upto)
        .enumerate()
        .fold(DIGEST_INIT, |d, (i, t)| mix_digest(d, i as u64, t.flops))
}

/// One atomic unit of work: runs to completion within a single power cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name (used in diagnostics).
    pub name: String,
    /// FLOPs the task performs.
    pub flops: u64,
}

impl Task {
    /// Creates a task.
    pub fn new(name: &str, flops: u64) -> Self {
        Task { name: name.to_string(), flops }
    }
}

/// An ordered collection of tasks making up one inference.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Splits a monolithic inference of `total_flops` into `num_tasks` equal
    /// tasks (SONIC tiles loop iterations; equal splitting captures the same
    /// behaviour at the granularity that matters for energy accounting).
    pub fn split_evenly(name_prefix: &str, total_flops: u64, num_tasks: usize) -> Self {
        let n = num_tasks.max(1) as u64;
        let base = total_flops / n;
        let remainder = total_flops % n;
        let tasks = (0..n)
            .map(|i| Task::new(&format!("{name_prefix}-{i}"), base + u64::from(i < remainder)))
            .collect();
        TaskGraph { tasks }
    }

    /// Appends a task.
    pub fn push(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// The tasks in execution order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total FLOPs across all tasks.
    pub fn total_flops(&self) -> u64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` when the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl FromIterator<Task> for TaskGraph {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskGraph { tasks: iter.into_iter().collect() }
    }
}

/// Outcome of running a task graph under intermittent power.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Whether every task completed.
    pub completed: bool,
    /// Wall-clock time spent, in seconds (compute plus waiting for energy).
    pub elapsed_s: f64,
    /// Time spent waiting for energy, in seconds.
    pub waiting_s: f64,
    /// Total energy drawn from storage, in millijoules.
    pub energy_consumed_mj: f64,
    /// Number of power failures (recharge waits) encountered.
    pub power_cycles: u64,
    /// Number of checkpoints durably committed (torn commits excluded).
    pub checkpoints: u64,
    /// Index of the first task that failed to run (when `completed == false`).
    pub failed_task: Option<usize>,
    /// Boots that recovered volatile state from NV after an injected power
    /// cut (natural recharge waits keep the capacitor's progress and are
    /// counted in `power_cycles` only).
    pub recovered_boots: u64,
    /// Checkpoint commits torn mid-write by a power cut.
    pub torn_writes: u64,
    /// Energy spent on work a power cut destroyed: partial task/commit
    /// progress at cut points plus full re-executions of tasks that had
    /// already run past the last durable checkpoint.
    pub wasted_reexecution_mj: f64,
    /// Running digest of the task outputs; bit-identical to the fault-free
    /// run's digest whenever recovery is correct.
    pub output_digest: u64,
    /// Generation of the newest durable checkpoint when execution ended.
    pub checkpoint_generation: u64,
}

/// What a boot found in NV memory (volatile state to resume from).
enum Recovered {
    /// No usable progress for *this* inference; start from task 0.
    /// Carries the generation lineage to continue from.
    Start { generation: u64 },
    /// A mid-run record: resume at `next_task` with the saved digest.
    Resume { generation: u64, next_task: usize, digest: u64 },
    /// A record committed *during this call* says the inference finished
    /// (the cut struck after the final commit became durable); the final
    /// state is re-read from NV by the caller.
    Finished,
}

/// Executes task graphs over a harvesting environment with checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermittentExecutor {
    cost: CostModel,
    /// Maximum time the executor will wait for energy before declaring the
    /// inference dead (the event is then missed).
    max_wait_s: f64,
    /// Polling step while waiting for energy, seconds.
    wait_step_s: f64,
}

impl IntermittentExecutor {
    /// Creates an executor with the given cost model and a default waiting
    /// budget of one hour per task.
    pub fn new(cost: CostModel) -> Self {
        IntermittentExecutor { cost, max_wait_s: 3_600.0, wait_step_s: 1.0 }
    }

    /// Overrides the maximum time to wait for energy before giving up.
    pub fn with_max_wait_s(mut self, max_wait_s: f64) -> Self {
        self.max_wait_s = max_wait_s.max(0.0);
        self
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Runs `graph` to completion (or starvation) against the harvesting
    /// simulator with no injected faults, committing a crash-consistent
    /// checkpoint into `nv` after every task. Equivalent to
    /// [`Self::execute_with_faults`] with [`FaultInjector::none`].
    ///
    /// # Errors
    ///
    /// Returns [`McuError::EmptyTaskGraph`] for an empty graph. Starvation is
    /// *not* an error: it is reported through
    /// [`ExecutionReport::completed`] so callers can count missed events.
    pub fn execute(
        &self,
        graph: &TaskGraph,
        sim: &mut HarvestSimulator,
        nv: &mut NonvolatileMemory,
    ) -> Result<ExecutionReport> {
        self.execute_with_faults(graph, sim, nv, &mut FaultInjector::none())
    }

    /// Runs `graph` as a reboot loop under an injected fault schedule.
    ///
    /// Every boot recovers the newest valid checkpoint from `nv` and resumes
    /// from its `next_task`; an injected cut (before a task, mid-task, or at
    /// a byte offset inside the checkpoint write) loses all volatile state
    /// and re-enters recovery. Injected cuts model brown-outs: the capacitor
    /// keeps its charge, so energy-conservation accounting is unaffected,
    /// but any work past the last durable checkpoint is lost and re-executed.
    ///
    /// A record already in `nv` from a *previous* interrupted call is honoured:
    /// execution resumes from it (true reboot-and-recover across calls), and
    /// the generation lineage continues monotonically across inferences that
    /// share one NV store.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::EmptyTaskGraph`] for an empty graph, or a
    /// propagated NV-capacity error if the store cannot hold the two
    /// checkpoint banks.
    pub fn execute_with_faults(
        &self,
        graph: &TaskGraph,
        sim: &mut HarvestSimulator,
        nv: &mut NonvolatileMemory,
        faults: &mut FaultInjector,
    ) -> Result<ExecutionReport> {
        if graph.is_empty() {
            return Err(McuError::EmptyTaskGraph);
        }
        let ckpt = TwoBankCheckpoint::default();
        let n = graph.len();
        let start_s = sim.now_s();
        let checkpoint_energy = self.cost.checkpoint_energy_mj();
        let checkpoint_latency = self.cost.checkpoint_latency_s();

        let mut waiting_s = 0.0;
        let mut energy_consumed = 0.0;
        let mut power_cycles = 0u64;
        let mut checkpoints = 0u64;
        let mut recovered_boots = 0u64;
        let mut torn_writes = 0u64;
        let mut wasted = 0.0f64;
        let mut exec_counts = vec![0u32; n];

        // Boot 0: recover whatever a previous life left behind. A done record
        // belongs to a completed earlier inference — only its generation
        // lineage carries over (entry_generation = MAX forces `Start`).
        let (mut generation, mut next_task, mut digest) =
            match Self::recover_state(&ckpt, nv, n, u64::MAX) {
                Recovered::Start { generation } => (generation, 0usize, DIGEST_INIT),
                Recovered::Resume { generation, next_task, digest } => {
                    (generation, next_task, digest)
                }
                Recovered::Finished => unreachable!("entry recovery never Finishes"),
            };
        let entry_generation = generation;

        // One iteration of this loop is one boot: run tasks from `next_task`
        // until completion or the next power cut.
        'boot: loop {
            let mut index = next_task;
            while index < n {
                let task = &graph.tasks()[index];
                let task_energy = self.cost.inference_energy_mj(task.flops);
                let needed = task_energy + checkpoint_energy;

                if !sim.storage().can_supply(needed) {
                    // Natural power failure: progress is safe in NV; wait to
                    // recharge. Volatile state survives in our model because
                    // the wait resumes exactly where the durable checkpoint
                    // says — `index` never moved past the last commit.
                    power_cycles += 1;
                    nv.power_failure();
                    let wait_start = sim.now_s();
                    match sim.wait_for_energy(needed, self.wait_step_s, self.max_wait_s) {
                        Ok(waited) => waiting_s += waited,
                        Err(_) => {
                            // wait_for_energy advances the clock while it
                            // polls, so charge the time actually waited, not
                            // the full budget.
                            waiting_s += sim.now_s() - wait_start;
                            return Ok(ExecutionReport {
                                completed: false,
                                elapsed_s: sim.now_s() - start_s,
                                waiting_s,
                                energy_consumed_mj: energy_consumed,
                                power_cycles,
                                checkpoints,
                                failed_task: Some(index),
                                recovered_boots,
                                torn_writes,
                                wasted_reexecution_mj: wasted,
                                output_digest: digest,
                                checkpoint_generation: generation,
                            });
                        }
                    }
                }

                match faults.on_task_start() {
                    Some(TaskCut::Before) => {
                        // Cut between tasks: nothing consumed, volatile lost.
                        match self.reboot(
                            &ckpt,
                            nv,
                            n,
                            entry_generation,
                            generation,
                            &mut power_cycles,
                            &mut recovered_boots,
                        ) {
                            Some((g, t, d)) => {
                                generation = g;
                                next_task = t;
                                digest = d;
                                continue 'boot;
                            }
                            None => break 'boot,
                        }
                    }
                    Some(TaskCut::Mid { fraction }) => {
                        // Cut mid-task: the partial energy and latency are
                        // spent and wasted — the task will re-run in full.
                        let f = fraction.clamp(0.0, 1.0);
                        let partial = f * task_energy;
                        sim.consume(partial)?;
                        energy_consumed += partial;
                        wasted += partial;
                        sim.advance_by(f * self.cost.inference_latency_s(task.flops));
                        match self.reboot(
                            &ckpt,
                            nv,
                            n,
                            entry_generation,
                            generation,
                            &mut power_cycles,
                            &mut recovered_boots,
                        ) {
                            Some((g, t, d)) => {
                                generation = g;
                                next_task = t;
                                digest = d;
                                continue 'boot;
                            }
                            None => break 'boot,
                        }
                    }
                    None => {}
                }

                // Run the task to completion.
                sim.consume(task_energy)?;
                energy_consumed += task_energy;
                if exec_counts[index] > 0 {
                    // Re-execution of work a cut destroyed.
                    wasted += task_energy;
                }
                exec_counts[index] += 1;
                sim.advance_by(self.cost.inference_latency_s(task.flops));
                digest = mix_digest(digest, index as u64, task.flops);

                // Commit the progress record into the stale bank.
                let record = CheckpointRecord {
                    generation: generation + 1,
                    next_task: (index + 1) as u32,
                    done: index + 1 == n,
                    digest,
                };
                match faults.on_commit(RECORD_BYTES) {
                    Some(offset) if offset < RECORD_BYTES => {
                        // Torn commit: only `offset` bytes reached NV. The
                        // partial write is waste here; the destroyed task
                        // work is charged when the task re-executes, so the
                        // ledger `consumed == fault_free + wasted` closes.
                        let f = offset as f64 / RECORD_BYTES as f64;
                        let partial = f * checkpoint_energy;
                        sim.consume(partial)?;
                        energy_consumed += partial;
                        wasted += partial;
                        sim.advance_by(f * checkpoint_latency);
                        ckpt.commit_torn(nv, &record, offset)?;
                        torn_writes += 1;
                        match self.reboot(
                            &ckpt,
                            nv,
                            n,
                            entry_generation,
                            generation,
                            &mut power_cycles,
                            &mut recovered_boots,
                        ) {
                            Some((g, t, d)) => {
                                generation = g;
                                next_task = t;
                                digest = d;
                                continue 'boot;
                            }
                            None => break 'boot,
                        }
                    }
                    post_commit_cut => {
                        sim.consume(checkpoint_energy)?;
                        energy_consumed += checkpoint_energy;
                        sim.advance_by(checkpoint_latency);
                        ckpt.commit(nv, &record)?;
                        checkpoints += 1;
                        generation = record.generation;
                        if post_commit_cut.is_some() {
                            // Cut just after the commit became durable: no
                            // work is lost, but the device still reboots.
                            match self.reboot(
                                &ckpt,
                                nv,
                                n,
                                entry_generation,
                                generation,
                                &mut power_cycles,
                                &mut recovered_boots,
                            ) {
                                Some((g, t, d)) => {
                                    generation = g;
                                    next_task = t;
                                    digest = d;
                                    continue 'boot;
                                }
                                None => break 'boot,
                            }
                        }
                    }
                }
                index += 1;
            }
            break 'boot;
        }

        // Either the task loop ran off the end or a post-final-commit reboot
        // recovered a done record; in both cases the newest durable record is
        // the final one.
        let final_record = ckpt.recover(nv).expect("completed run leaves a durable record");
        debug_assert!(final_record.done && final_record.generation == generation);
        Ok(ExecutionReport {
            completed: true,
            elapsed_s: sim.now_s() - start_s,
            waiting_s,
            energy_consumed_mj: energy_consumed,
            power_cycles,
            checkpoints,
            failed_task: None,
            recovered_boots,
            torn_writes,
            wasted_reexecution_mj: wasted,
            output_digest: final_record.digest,
            checkpoint_generation: generation,
        })
    }

    /// Handles one injected power cut: loses volatile state and recovers
    /// from NV. Returns the volatile state for the next boot, or `None` when
    /// the recovered record says this call's inference already finished.
    #[allow(clippy::too_many_arguments)]
    fn reboot(
        &self,
        ckpt: &TwoBankCheckpoint,
        nv: &mut NonvolatileMemory,
        n: usize,
        entry_generation: u64,
        volatile_generation: u64,
        power_cycles: &mut u64,
        recovered_boots: &mut u64,
    ) -> Option<(u64, usize, u64)> {
        *power_cycles += 1;
        *recovered_boots += 1;
        nv.power_failure();
        match Self::recover_state(ckpt, nv, n, entry_generation) {
            Recovered::Start { generation } => {
                debug_assert!(
                    generation >= volatile_generation.min(entry_generation),
                    "checkpoint generation regressed: {generation} < {volatile_generation}"
                );
                Some((generation, 0, DIGEST_INIT))
            }
            Recovered::Resume { generation, next_task, digest } => {
                debug_assert!(
                    generation == volatile_generation,
                    "recovery must land on the newest durable generation"
                );
                Some((generation, next_task, digest))
            }
            Recovered::Finished => None,
        }
    }

    /// Decodes NV into the state a boot should resume from. Records with
    /// `generation <= entry_generation` predate this call and cannot mean
    /// "this inference finished".
    fn recover_state(
        ckpt: &TwoBankCheckpoint,
        nv: &NonvolatileMemory,
        n: usize,
        entry_generation: u64,
    ) -> Recovered {
        match ckpt.recover(nv) {
            None => Recovered::Start { generation: 0 },
            Some(r) if r.done => {
                if r.generation > entry_generation {
                    Recovered::Finished
                } else {
                    Recovered::Start { generation: r.generation }
                }
            }
            Some(r) if (r.next_task as usize) < n => Recovered::Resume {
                generation: r.generation,
                next_task: r.next_task as usize,
                digest: r.digest,
            },
            // A mid-run record pointing past this (shorter) graph: progress
            // is meaningless here; keep the lineage and start over.
            Some(r) => Recovered::Start { generation: r.generation },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, McuDevice, ScheduledCut};
    use ie_energy::{ConstantTrace, EnergyStorage, HarvestSimulator};

    fn executor() -> IntermittentExecutor {
        IntermittentExecutor::new(CostModel::for_device(&McuDevice::msp432()))
    }

    fn sim_with(power_mw: f64, capacity_mj: f64, initial_mj: f64) -> HarvestSimulator {
        HarvestSimulator::new(
            Box::new(ConstantTrace::new(power_mw, 10_000_000.0)),
            EnergyStorage::new(capacity_mj, 1.0).with_initial_level(initial_mj),
        )
    }

    #[test]
    fn split_evenly_preserves_total_flops() {
        let g = TaskGraph::split_evenly("conv", 1_000_003, 7);
        assert_eq!(g.len(), 7);
        assert_eq!(g.total_flops(), 1_000_003);
        // Individual tasks differ by at most one FLOP.
        let min = g.tasks().iter().map(|t| t.flops).min().unwrap();
        let max = g.tasks().iter().map(|t| t.flops).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn ample_energy_completes_in_one_power_cycle() {
        let exec = executor();
        // 2 MFLOPs -> 3 mJ; give the capacitor plenty.
        let graph = TaskGraph::split_evenly("net", 2_000_000, 10);
        let mut sim = sim_with(1.0, 100.0, 50.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(report.completed);
        assert_eq!(report.power_cycles, 0);
        assert_eq!(report.checkpoints, 10);
        assert!(report.energy_consumed_mj >= 3.0);
        assert!(report.waiting_s == 0.0);
        assert!(report.failed_task.is_none());
    }

    #[test]
    fn weak_harvesting_needs_multiple_power_cycles() {
        let exec = executor();
        // 2 MFLOPs -> 3 mJ total, but the capacitor only holds 0.5 mJ, so the
        // executor must repeatedly wait for recharge between tasks.
        let graph = TaskGraph::split_evenly("net", 2_000_000, 10);
        let mut sim = sim_with(0.05, 0.5, 0.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(report.completed);
        assert!(report.power_cycles >= 5, "power cycles {}", report.power_cycles);
        assert!(report.waiting_s > 0.0);
        assert_eq!(nv.power_failures(), report.power_cycles);
    }

    #[test]
    fn starvation_reports_incomplete_instead_of_erroring() {
        let exec = executor().with_max_wait_s(10.0);
        let graph = TaskGraph::split_evenly("net", 2_000_000, 4);
        // Zero harvest power and an empty capacitor: nothing can ever run.
        let mut sim = sim_with(0.0, 1.0, 0.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(!report.completed);
        assert_eq!(report.failed_task, Some(0));
        assert_eq!(report.checkpoints, 0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let exec = executor();
        let mut sim = sim_with(1.0, 10.0, 10.0);
        let mut nv = NonvolatileMemory::new(64);
        assert!(matches!(
            exec.execute(&TaskGraph::new(), &mut sim, &mut nv),
            Err(McuError::EmptyTaskGraph)
        ));
    }

    #[test]
    fn fault_free_run_reports_zero_recovery_and_reference_digest() {
        let exec = executor();
        let graph = TaskGraph::split_evenly("net", 2_000_000, 10);
        let mut sim = sim_with(1.0, 100.0, 50.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(report.completed);
        assert_eq!(report.recovered_boots, 0);
        assert_eq!(report.torn_writes, 0);
        assert_eq!(report.wasted_reexecution_mj, 0.0);
        assert_eq!(report.output_digest, task_digest(&graph, graph.len()));
        assert_eq!(report.checkpoint_generation, 10);
    }

    #[test]
    fn injected_cuts_recover_to_the_fault_free_digest() {
        let exec = executor();
        let graph = TaskGraph::split_evenly("net", 2_000_000, 6);
        let reference = task_digest(&graph, graph.len());

        let plans = [
            FaultPlan::single(ScheduledCut::BeforeTask { nth_exec: 2 }),
            FaultPlan::single(ScheduledCut::MidTask { nth_exec: 4, fraction: 0.7 }),
            FaultPlan::single(ScheduledCut::DuringCommit { nth_commit: 3, byte_offset: 13 }),
            FaultPlan::Scripted(vec![
                ScheduledCut::MidTask { nth_exec: 1, fraction: 0.5 },
                ScheduledCut::DuringCommit { nth_commit: 2, byte_offset: 0 },
                ScheduledCut::DuringCommit { nth_commit: 3, byte_offset: 31 },
                ScheduledCut::BeforeTask { nth_exec: 7 },
            ]),
        ];
        for plan in plans {
            let mut sim = sim_with(1.0, 100.0, 50.0);
            let mut nv = NonvolatileMemory::new(1024);
            let mut inj = plan.injector();
            let report = exec.execute_with_faults(&graph, &mut sim, &mut nv, &mut inj).unwrap();
            assert!(report.completed, "plan {plan:?}");
            assert_eq!(report.output_digest, reference, "plan {plan:?}");
            assert_eq!(report.recovered_boots, inj.cuts_injected(), "plan {plan:?}");
            assert_eq!(report.torn_writes, nv.torn_writes(), "plan {plan:?}");
            if inj.cuts_injected() > 0 {
                assert!(report.power_cycles >= report.recovered_boots);
            }
        }
    }

    #[test]
    fn torn_commit_wastes_reexecution_energy() {
        let exec = executor();
        let graph = TaskGraph::split_evenly("net", 2_000_000, 6);
        let mut free_sim = sim_with(1.0, 100.0, 50.0);
        let mut free_nv = NonvolatileMemory::new(1024);
        let fault_free = exec.execute(&graph, &mut free_sim, &mut free_nv).unwrap();

        let mut sim = sim_with(1.0, 100.0, 50.0);
        let mut nv = NonvolatileMemory::new(1024);
        let mut inj =
            FaultPlan::single(ScheduledCut::DuringCommit { nth_commit: 2, byte_offset: 16 })
                .injector();
        let report = exec.execute_with_faults(&graph, &mut sim, &mut nv, &mut inj).unwrap();
        assert!(report.completed);
        assert_eq!(report.torn_writes, 1);
        assert_eq!(report.recovered_boots, 1);
        assert!(report.wasted_reexecution_mj > 0.0);
        // Total energy = fault-free energy + exactly the reported waste.
        let expected = fault_free.energy_consumed_mj + report.wasted_reexecution_mj;
        assert!(
            (report.energy_consumed_mj - expected).abs() < 1e-9,
            "waste accounting must close the energy ledger: {} vs {expected}",
            report.energy_consumed_mj
        );
        // One torn attempt, then a durable re-commit: one extra durable
        // generation never appears, so the count stays at n.
        assert_eq!(report.checkpoint_generation, graph.len() as u64);
        assert_eq!(report.checkpoints, graph.len() as u64);
    }

    #[test]
    fn post_commit_cut_on_final_task_still_completes() {
        let exec = executor();
        let graph = TaskGraph::split_evenly("net", 2_000_000, 4);
        let mut sim = sim_with(1.0, 100.0, 50.0);
        let mut nv = NonvolatileMemory::new(1024);
        // Offset == RECORD_BYTES: the final commit is durable, then power dies.
        let mut inj = FaultPlan::single(ScheduledCut::DuringCommit {
            nth_commit: 3,
            byte_offset: crate::RECORD_BYTES,
        })
        .injector();
        let report = exec.execute_with_faults(&graph, &mut sim, &mut nv, &mut inj).unwrap();
        assert!(report.completed);
        assert_eq!(report.recovered_boots, 1);
        assert_eq!(report.torn_writes, 0);
        assert_eq!(report.wasted_reexecution_mj, 0.0, "nothing re-executes after a durable commit");
        assert_eq!(report.output_digest, task_digest(&graph, graph.len()));
    }

    #[test]
    fn resumes_a_previous_calls_interrupted_inference() {
        let exec = executor();
        let graph = TaskGraph::split_evenly("net", 2_000_000, 8);
        // A previous life committed progress through task 5 (generation 5).
        let mut nv = NonvolatileMemory::new(1024);
        let ckpt = crate::TwoBankCheckpoint::default();
        ckpt.commit(
            &mut nv,
            &crate::CheckpointRecord {
                generation: 5,
                next_task: 5,
                done: false,
                digest: task_digest(&graph, 5),
            },
        )
        .unwrap();

        let mut sim = sim_with(1.0, 100.0, 50.0);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(report.completed);
        assert_eq!(report.checkpoints, 3, "only tasks 5..8 run");
        assert_eq!(report.output_digest, task_digest(&graph, graph.len()));
        assert_eq!(report.checkpoint_generation, 8);
    }

    #[test]
    fn generations_grow_monotonically_across_sequential_inferences() {
        let exec = executor();
        let graph = TaskGraph::split_evenly("net", 1_000_000, 5);
        let mut nv = NonvolatileMemory::new(1024);
        let mut last_generation = 0;
        for round in 0..4 {
            let mut sim = sim_with(1.0, 100.0, 50.0);
            let mut inj = FaultPlan::random(round, 0.2, 8).injector();
            let report = exec.execute_with_faults(&graph, &mut sim, &mut nv, &mut inj).unwrap();
            assert!(report.completed);
            assert!(
                report.checkpoint_generation > last_generation,
                "round {round}: generation must keep growing on a shared NV store"
            );
            last_generation = report.checkpoint_generation;
        }
    }

    #[test]
    fn starvation_reports_actual_waited_time() {
        let exec = executor().with_max_wait_s(10.0);
        let graph = TaskGraph::split_evenly("net", 2_000_000, 4);
        let mut sim = sim_with(0.0, 1.0, 0.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(!report.completed);
        // The clock advanced exactly while waiting; the report must agree
        // with the simulator instead of assuming the full budget was burned.
        assert!((report.waiting_s - sim.now_s()).abs() < 1e-9);
        assert!(report.waiting_s >= 10.0);
    }

    #[test]
    fn more_tasks_mean_more_checkpoint_energy() {
        let coarse = TaskGraph::split_evenly("net", 1_000_000, 2);
        let fine = TaskGraph::split_evenly("net", 1_000_000, 50);
        let exec = executor();
        let mut nv1 = NonvolatileMemory::new(1024);
        let mut nv2 = NonvolatileMemory::new(1024);
        let mut sim1 = sim_with(1.0, 100.0, 100.0);
        let mut sim2 = sim_with(1.0, 100.0, 100.0);
        let r1 = exec.execute(&coarse, &mut sim1, &mut nv1).unwrap();
        let r2 = exec.execute(&fine, &mut sim2, &mut nv2).unwrap();
        assert!(r2.energy_consumed_mj > r1.energy_consumed_mj);
    }
}
