//! Procedurally generated image datasets.
//!
//! The paper trains on CIFAR-10, which is not available in this environment.
//! To keep the full train → compress → deploy pipeline executable end-to-end,
//! this module generates a small synthetic image-classification dataset whose
//! classes are distinguishable texture patterns (stripes, checkerboards,
//! gradients, blobs) corrupted with Gaussian noise. A LeNet-class network can
//! learn it in a few seconds of CPU time, which is exactly what the tests and
//! the `train_synthetic` example rely on.

use ie_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Input image, shaped `[1, size, size]`.
    pub image: Tensor,
    /// Class label in `0..num_classes`.
    pub label: usize,
}

/// A synthetic texture-classification dataset.
///
/// # Example
///
/// ```
/// use ie_nn::dataset::SyntheticDataset;
///
/// let data = SyntheticDataset::generate(4, 8, 40, 0.1, 7);
/// assert_eq!(data.train().len() + data.test().len(), 40);
/// assert_eq!(data.num_classes(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    train: Vec<Sample>,
    test: Vec<Sample>,
    num_classes: usize,
    image_size: usize,
}

impl SyntheticDataset {
    /// Generates `total` samples of `num_classes` classes over
    /// `image_size × image_size` single-channel images, with additive
    /// Gaussian noise of the given standard deviation. 80 % of the samples go
    /// to the training split and 20 % to the test split.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is zero or greater than 6 (only six base
    /// patterns are defined), or if `image_size` is zero.
    pub fn generate(
        num_classes: usize,
        image_size: usize,
        total: usize,
        noise_std: f32,
        seed: u64,
    ) -> Self {
        assert!((1..=6).contains(&num_classes), "between 1 and 6 classes are supported");
        assert!(image_size > 0, "image size must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(total);
        for i in 0..total {
            let label = i % num_classes;
            samples.push(Sample {
                image: Self::pattern(label, image_size, noise_std, &mut rng),
                label,
            });
        }
        // Deterministic shuffle so the splits are class-balanced but not ordered.
        for i in (1..samples.len()).rev() {
            let j = rng.gen_range(0..=i);
            samples.swap(i, j);
        }
        let split = (total as f32 * 0.8).round() as usize;
        let test = samples.split_off(split.min(samples.len()));
        SyntheticDataset { train: samples, test, num_classes, image_size }
    }

    fn pattern(label: usize, size: usize, noise_std: f32, rng: &mut StdRng) -> Tensor {
        let mut img = vec![0.0f32; size * size];
        let phase = rng.gen_range(0..size);
        for y in 0..size {
            for x in 0..size {
                let v = match label {
                    // Vertical stripes.
                    0 => {
                        if (x + phase) % 4 < 2 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    // Horizontal stripes.
                    1 => {
                        if (y + phase) % 4 < 2 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    // Checkerboard.
                    2 => {
                        if (x / 2 + y / 2) % 2 == 0 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    // Diagonal gradient.
                    3 => (x as f32 + y as f32) / (2.0 * size as f32) * 2.0 - 1.0,
                    // Bright centre blob.
                    4 => {
                        let cx = size as f32 / 2.0;
                        let cy = size as f32 / 2.0;
                        let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                        (-(d2) / (size as f32)).exp() * 2.0 - 1.0
                    }
                    // Bright corner blob.
                    _ => {
                        let d2 = (x as f32).powi(2) + (y as f32).powi(2);
                        (-(d2) / (size as f32)).exp() * 2.0 - 1.0
                    }
                };
                img[y * size + x] = v;
            }
        }
        let mut t = Tensor::from_vec(img, &[1, size, size]).expect("pattern buffer matches shape");
        if noise_std > 0.0 {
            let noise = Tensor::randn(rng, &[1, size, size], 0.0, noise_std);
            t.add_scaled_inplace(&noise, 1.0).expect("noise shape matches");
        }
        t
    }

    /// Training split.
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Held-out test split.
    pub fn test(&self) -> &[Sample] {
        &self.test
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Side length of the square images.
    pub fn image_size(&self) -> usize {
        self.image_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_sum_to_total_and_images_have_right_shape() {
        let d = SyntheticDataset::generate(3, 8, 50, 0.05, 1);
        assert_eq!(d.train().len() + d.test().len(), 50);
        assert_eq!(d.train().len(), 40);
        for s in d.train().iter().chain(d.test()) {
            assert_eq!(s.image.dims(), &[1, 8, 8]);
            assert!(s.label < 3);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = SyntheticDataset::generate(4, 8, 20, 0.1, 99);
        let b = SyntheticDataset::generate(4, 8, 20, 0.1, 99);
        assert_eq!(a.train()[0].image, b.train()[0].image);
        assert_eq!(a.train()[0].label, b.train()[0].label);
    }

    #[test]
    fn different_classes_produce_different_patterns() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = SyntheticDataset::pattern(0, 8, 0.0, &mut rng);
        let b = SyntheticDataset::pattern(1, 8, 0.0, &mut rng);
        let diff: f32 = a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "patterns of different classes must differ");
    }

    #[test]
    #[should_panic(expected = "between 1 and 6 classes")]
    fn too_many_classes_panics() {
        let _ = SyntheticDataset::generate(9, 8, 10, 0.0, 0);
    }

    #[test]
    fn all_classes_present_in_training_split() {
        let d = SyntheticDataset::generate(4, 8, 80, 0.1, 3);
        for c in 0..4 {
            assert!(d.train().iter().any(|s| s.label == c), "class {c} missing from train split");
        }
    }
}
