//! Serving-run statistics: what the bench family reports and what the
//! operator watches. Everything derived from the *virtual* clock (queue
//! waits, batch fill) is deterministic for a fixed request stream; the
//! latency percentiles and throughput fold in measured compute time and are
//! machine-dependent by nature.

/// Aggregate statistics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests admitted and answered with a prediction.
    pub served: usize,
    /// Requests shed by admission control.
    pub rejected: usize,
    /// Number of closed batching windows.
    pub batches: usize,
    /// Mean requests per batch (0 when no batch closed).
    pub mean_batch_fill: f64,
    /// Median queue wait on the virtual clock (deterministic).
    pub wait_p50_s: f64,
    /// 99th-percentile queue wait on the virtual clock (deterministic).
    pub wait_p99_s: f64,
    /// Median request latency — queue wait plus compute, compute measured.
    pub latency_p50_s: f64,
    /// 99th-percentile request latency.
    pub latency_p99_s: f64,
    /// Served requests per second of modeled makespan.
    pub throughput_rps: f64,
    /// Total measured compute across all batches (seconds).
    pub compute_s: f64,
}

impl ServeReport {
    /// A report for a run that served nothing.
    pub fn empty() -> Self {
        ServeReport {
            served: 0,
            rejected: 0,
            batches: 0,
            mean_batch_fill: 0.0,
            wait_p50_s: 0.0,
            wait_p99_s: 0.0,
            latency_p50_s: 0.0,
            latency_p99_s: 0.0,
            throughput_rps: 0.0,
            compute_s: 0.0,
        }
    }
}

/// Nearest-rank percentile of an unsorted sample set (`q` in `0..=1`).
/// Returns 0 for an empty set.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile over non-finite values"));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0, "input need not be sorted");
    }
}
