//! Machine-readable inference micro-benchmark seeding the perf trajectory.
//!
//! ```text
//! cargo run --release -p ie_bench --bin bench_json            # full run
//! cargo run --release -p ie_bench --bin bench_json -- --fast  # CI smoke
//! ```
//!
//! Benchmarks three implementations of `multi_exit_forward` on the paper's
//! LeNet backbone **in the same binary**:
//!
//! * `pre_pr_allocating` — a faithful replica of the pre-planning forward
//!   path: per-layer output allocation, fresh `im2col` matrix, weight
//!   reshape/copy, the branchy zero-skip GEMM, separate bias and ReLU passes;
//! * `allocating` — the current `MultiExitNetwork::forward_to_exit` (thin
//!   wrappers over the blocked `_into` kernels, still allocating per layer);
//! * `planned` — `forward_to_exit_with` over a reusable `ExecutionPlan`
//!   (zero allocations after warm-up, fused bias+ReLU epilogues).
//!
//! Writes `BENCH_inference.json` (median ns/op per exit) into the current
//! directory and prints a summary table. All three paths are checked to
//! produce the same prediction before anything is timed.

use ie_nn::loss::{confidence, softmax};
use ie_nn::spec::lenet_multi_exit;
use ie_nn::{Conv2d, Dense, Layer, MultiExitNetwork};
use ie_tensor::{Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Verbatim copy of the pre-planning `im2col` (fresh allocation plus the
/// per-element padding branch), kept here so the baseline measures the real
/// pre-PR code, not today's hoisted-bounds implementation.
fn pre_pr_im2col(input: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = out_h * out_w;
    let rows = geom.in_channels * k * k;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.as_slice();
    for c in 0..geom.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..out_h {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    for ox in 0..out_w {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        let col = oy * out_w + ox;
                        let value = if iy >= 0
                            && iy < geom.in_h as isize
                            && ix >= 0
                            && ix < geom.in_w as isize
                        {
                            data[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row * cols + col] = value;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("bench shapes are valid")
}

/// Replica of the pre-planning convolution forward: `im2col` allocation,
/// weight reshape (a full copy), the zero-skip GEMM, an output reshape
/// (another copy) and a separate bias pass.
fn pre_pr_conv_forward(conv: &Conv2d, input: &Tensor) -> Tensor {
    let geom = conv.geometry();
    let k = geom.kernel;
    let cols = pre_pr_im2col(input, geom);
    let wmat = conv
        .weight()
        .reshape(&[conv.out_channels(), geom.in_channels * k * k])
        .expect("bench shapes are valid");
    let out = wmat.matmul_sparse_aware(&cols).expect("bench shapes are valid");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = out.reshape(&[conv.out_channels(), oh, ow]).expect("bench shapes are valid");
    let plane = oh * ow;
    let data = out.as_mut_slice();
    for c in 0..conv.out_channels() {
        let b = conv.bias().as_slice()[c];
        for v in &mut data[c * plane..(c + 1) * plane] {
            *v += b;
        }
    }
    out
}

/// Verbatim copy of the pre-planning `matvec` (allocating, strictly
/// sequential per-row sum — the form LLVM cannot vectorise).
fn pre_pr_matvec(weight: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = (weight.dims()[0], weight.dims()[1]);
    let a = weight.as_slice();
    let xs = x.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &a[i * k..(i + 1) * k];
        *o = row.iter().zip(xs).map(|(&w, &v)| w * v).sum();
    }
    Tensor::from_vec(out, &[m]).expect("bench shapes are valid")
}

/// Replica of the pre-planning dense forward: input reshape (copy), allocating
/// sequential matvec, separate bias pass.
fn pre_pr_dense_forward(dense: &Dense, input: &Tensor) -> Tensor {
    let flat = input.reshape(&[dense.in_features()]).expect("bench shapes are valid");
    let mut y = pre_pr_matvec(dense.weight(), &flat);
    y.add_scaled_inplace(dense.bias(), 1.0).expect("bench shapes are valid");
    y
}

fn pre_pr_run_layers(layers: &[Layer], input: &Tensor) -> Tensor {
    let mut x = input.clone();
    for layer in layers {
        x = match layer {
            Layer::Conv2d(conv) => pre_pr_conv_forward(conv, &x),
            Layer::Dense(dense) => pre_pr_dense_forward(dense, &x),
            other => other.forward(&x).expect("bench shapes are valid"),
        };
    }
    x
}

/// Replica of the pre-planning `forward_to_exit`, including the softmax /
/// confidence tensor chain of `ExitOutput`.
fn pre_pr_forward_to_exit(net: &MultiExitNetwork, input: &Tensor, exit: usize) -> (usize, f32) {
    let mut trunk = input.clone();
    for segment in &net.segments()[..=exit] {
        trunk = pre_pr_run_layers(segment, &trunk);
    }
    let logits = pre_pr_run_layers(&net.branches()[exit], &trunk);
    let probs = softmax(&logits).expect("bench shapes are valid");
    let prediction = probs.argmax().expect("non-empty logits");
    (prediction, confidence(&probs))
}

/// Median wall-clock nanoseconds of `f` over `samples` timed invocations
/// (after `warmup` untimed ones).
fn median_ns<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct CaseResult {
    case: String,
    pre_pr_ns: u64,
    allocating_ns: u64,
    planned_ns: u64,
}

impl CaseResult {
    fn speedup_vs_pre_pr(&self) -> f64 {
        self.pre_pr_ns as f64 / self.planned_ns.max(1) as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_inference.json".to_string());
    let (warmup, samples) = if fast { (2, 9) } else { (5, 41) };

    let mut rng = StdRng::seed_from_u64(0);
    let arch = lenet_multi_exit();
    let net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
    let input = Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0);
    let mut plan = net.execution_plan();

    // The three paths must agree before any timing is trusted.
    for exit in 0..3 {
        let (pre_pred, _) = pre_pr_forward_to_exit(&net, &input, exit);
        let (alloc_out, _) = net.forward_to_exit(&input, exit).unwrap();
        let planned_out = net.forward_to_exit_with(&mut plan, &input, exit).unwrap();
        assert_eq!(pre_pred, alloc_out.prediction, "pre-PR replica diverged at exit {exit}");
        assert_eq!(planned_out.prediction, alloc_out.prediction, "planned diverged at {exit}");
    }

    let mut results = Vec::new();
    for exit in 0..3 {
        let pre_pr_ns = median_ns(warmup, samples, || {
            black_box(pre_pr_forward_to_exit(&net, &input, exit).0);
        });
        let allocating_ns = median_ns(warmup, samples, || {
            black_box(net.forward_to_exit(&input, exit).unwrap().0.prediction);
        });
        let planned_ns = median_ns(warmup, samples, || {
            black_box(net.forward_to_exit_with(&mut plan, &input, exit).unwrap().prediction);
        });
        results.push(CaseResult {
            case: format!("to_exit_{}", exit + 1),
            pre_pr_ns,
            allocating_ns,
            planned_ns,
        });
    }

    println!("# multi_exit_forward — median ns/op over {samples} samples\n");
    println!(
        "{:<12} {:>16} {:>14} {:>12} {:>22}",
        "case", "pre_pr_allocating", "allocating", "planned", "planned vs pre-PR"
    );
    for r in &results {
        println!(
            "{:<12} {:>16} {:>14} {:>12} {:>21.2}x",
            r.case,
            r.pre_pr_ns,
            r.allocating_ns,
            r.planned_ns,
            r.speedup_vs_pre_pr()
        );
    }

    let gate = results.last().expect("three cases benchmarked");
    let json_cases: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"case\": \"multi_exit_forward/{}\",\n      \"pre_pr_allocating_ns\": {},\n      \"allocating_ns\": {},\n      \"planned_ns\": {},\n      \"speedup_planned_vs_pre_pr\": {:.3}\n    }}",
                r.case, r.pre_pr_ns, r.allocating_ns, r.planned_ns, r.speedup_vs_pre_pr()
            )
        })
        .collect();
    // Record the invocation that actually produced this file, so the artifact
    // is reproducible as-is (e.g. CI passes --fast).
    let command = if args.is_empty() {
        "cargo run --release -p ie_bench --bin bench_json".to_string()
    } else {
        format!("cargo run --release -p ie_bench --bin bench_json -- {}", args.join(" "))
    };
    let json = format!(
        "{{\n  \"benchmark\": \"multi_exit_forward\",\n  \"network\": \"lenet_multi_exit\",\n  \"unit\": \"ns_per_op\",\n  \"statistic\": \"median\",\n  \"samples\": {},\n  \"command\": \"{}\",\n  \"results\": [\n{}\n  ],\n  \"acceptance\": {{\n    \"case\": \"multi_exit_forward/to_exit_3\",\n    \"required_speedup_vs_pre_pr\": 2.0,\n    \"measured_speedup_vs_pre_pr\": {:.3},\n    \"pass\": {}\n  }}\n}}\n",
        samples,
        command,
        json_cases.join(",\n"),
        gate.speedup_vs_pre_pr(),
        gate.speedup_vs_pre_pr() >= 2.0
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!(
        "\nwrote {out_path} (to_exit_3 planned speedup vs pre-PR: {:.2}x)",
        gate.speedup_vs_pre_pr()
    );
}
