//! Property-based equivalence of the batched and single-input planned paths.
//!
//! The contract under test: for ANY batch size in `1..=16`, ANY inputs and
//! ANY sparse-hint (pruned-weight) configuration, every sample's logits,
//! probabilities, prediction and confidence from a [`ie_nn::BatchPlan`] pass
//! are **bit-identical** to running that sample alone through the
//! single-input [`ie_nn::ExecutionPlan`]. The compressed-policy variant
//! (pruning + quantization applied through real `ie_compress` policies) lives
//! in `ie_compress`'s tests to keep the dependency direction intact.

use ie_nn::spec::tiny_multi_exit;
use ie_nn::{Layer, MultiExitNetwork};
use ie_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a tiny network, optionally pruning a fraction of each conv's
/// filters and setting the sparse hint (the layer state `ie_compress`'s
/// channel pruning produces).
fn build_net(seed: u64, prune_mod: usize) -> MultiExitNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
    if prune_mod > 0 {
        for layers in net.segments_mut().iter_mut() {
            prune(layers, prune_mod);
        }
        for layers in net.branches_mut().iter_mut() {
            prune(layers, prune_mod);
        }
    }
    net
}

fn prune(layers: &mut [Layer], prune_mod: usize) {
    for layer in layers.iter_mut() {
        if let Layer::Conv2d(conv) = layer {
            let out_ch = conv.out_channels();
            let per_filter = conv.weight().len() / out_ch;
            for (i, w) in conv.weight_mut().as_mut_slice().iter_mut().enumerate() {
                if (i / per_filter) % prune_mod == 0 {
                    *w = 0.0;
                }
            }
            conv.set_sparse_hint(true);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched logits are bit-identical to N independent single-input planned
    /// passes, for random batch sizes, inputs, seeds and pruning densities.
    #[test]
    fn batched_logits_bit_identical_to_single_planned(
        seed in 0u64..1_000,
        batch in 1usize..=16,
        prune_mod in 0usize..=3,
        data in proptest::collection::vec(-3.0f32..3.0, 16 * 64),
    ) {
        // prune_mod 0 => dense weights; 2/3 => every 2nd/3rd filter zeroed
        // with the sparse-aware GEMM selected.
        let net = build_net(seed, if prune_mod == 1 { 2 } else { prune_mod });
        let inputs: Vec<Tensor> = (0..batch)
            .map(|s| {
                Tensor::from_vec(data[s * 64..(s + 1) * 64].to_vec(), &[1, 8, 8])
                    .expect("slice length matches shape")
            })
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut batch_plan = net.batch_plan(batch);
        let mut single_plan = net.execution_plan();
        for exit in 0..net.num_exits() {
            let out = net.forward_to_exit_batch_with(&mut batch_plan, &refs, exit).unwrap();
            prop_assert_eq!(out.len(), batch);
            for (i, input) in inputs.iter().enumerate() {
                let single = net.forward_to_exit_with(&mut single_plan, input, exit).unwrap();
                prop_assert_eq!(out.prediction(i), single.prediction);
                prop_assert_eq!(out.confidence(i).to_bits(), single.confidence.to_bits());
                let batched_bits: Vec<u32> =
                    out.logits(i).iter().map(|v| v.to_bits()).collect();
                let single_bits: Vec<u32> =
                    single_plan.logits(exit).iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(batched_bits, single_bits, "exit {} sample {}", exit, i);
                let batched_probs: Vec<u32> =
                    out.probs(i).iter().map(|v| v.to_bits()).collect();
                let single_probs: Vec<u32> =
                    single_plan.probs(exit).iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(batched_probs, single_probs, "exit {} sample {}", exit, i);
            }
        }
    }

    /// A batched continuation equals the batched direct pass to the deeper
    /// exit (and therefore, transitively, the single-input path).
    #[test]
    fn batched_continuation_equals_direct(
        seed in 0u64..1_000,
        batch in 1usize..=8,
        data in proptest::collection::vec(-2.0f32..2.0, 8 * 64),
    ) {
        let net = build_net(seed, 0);
        let inputs: Vec<Tensor> = (0..batch)
            .map(|s| {
                Tensor::from_vec(data[s * 64..(s + 1) * 64].to_vec(), &[1, 8, 8])
                    .expect("slice length matches shape")
            })
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut direct = net.batch_plan(batch);
        net.forward_to_exit_batch_with(&mut direct, &refs, 1).unwrap();
        let mut incremental = net.batch_plan(batch);
        net.forward_to_exit_batch_with(&mut incremental, &refs, 0).unwrap();
        net.continue_to_exit_batch_with(&mut incremental, 1).unwrap();
        for i in 0..batch {
            let a: Vec<u32> =
                incremental.output(1).logits(i).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = direct.output(1).logits(i).iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b, "sample {}", i);
        }
    }
}
