//! `im2col`/`col2im` lowering used by the convolution layers.
//!
//! A convolution over a `[C, H, W]` input with `[O, C, K, K]` filters is
//! computed as a matrix product between the filter matrix `[O, C·K·K]` and
//! the column matrix `[C·K·K, H_out·W_out]` produced by [`im2col`]. The
//! backward pass uses [`col2im`] to scatter column gradients back into image
//! layout.
//!
//! Unlike the arithmetic kernels, the lowerings deliberately have **no**
//! runtime ISA tiers (see [`crate::dispatch`]): they move values without
//! computing on them, and the hoisted-bounds hot region of every row is a
//! single contiguous `copy_from_slice` (a `memcpy`) for the stride-1
//! convolutions the backbone uses — explicit vector code could not beat it,
//! and identical data movement on every tier is trivially bit-identical.

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution: input size, kernel, stride and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Number of input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output height of the convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width of the convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Validates that the kernel fits in the padded input and the stride is
    /// non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvGeometry`] describing the problem.
    pub fn validate(&self) -> Result<()> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConvGeometry("stride must be non-zero".into()));
        }
        if self.kernel == 0 {
            return Err(TensorError::InvalidConvGeometry("kernel must be non-zero".into()));
        }
        if self.in_h + 2 * self.padding < self.kernel || self.in_w + 2 * self.padding < self.kernel
        {
            return Err(TensorError::InvalidConvGeometry(format!(
                "kernel {} larger than padded input {}x{}",
                self.kernel,
                self.in_h + 2 * self.padding,
                self.in_w + 2 * self.padding
            )));
        }
        Ok(())
    }
}

impl Conv2dGeometry {
    /// Number of rows of the column matrix [`im2col`] produces
    /// (`in_channels · kernel²`).
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of columns of the column matrix (`out_h · out_w`).
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Element count of the column matrix (`col_rows · col_cols`).
    pub fn col_len(&self) -> usize {
        self.col_rows() * self.col_cols()
    }
}

/// The hoisted padding bounds of one `(ky, kx)` kernel offset: for a fixed
/// offset the valid output range is computable in closed form, so the hot
/// middle region of every row is a branch-free copy (a straight memcpy for
/// stride 1). The bounds depend only on the geometry and `(ky, kx)` — not on
/// the channel or sample — which is why the batched lowering computes them
/// once per offset and reuses them across the whole `channels × batch` sweep.
struct KernelOffsetBounds {
    shift: isize,
    vshift: isize,
    ox_lo: usize,
    ox_hi: usize,
    oy_lo: usize,
    oy_hi: usize,
}

impl KernelOffsetBounds {
    fn new(geom: &Conv2dGeometry, ky: usize, kx: usize) -> Self {
        let (out_h, out_w) = (geom.out_h(), geom.out_w());
        let (stride, in_h, in_w) = (geom.stride, geom.in_h, geom.in_w);
        let shift = kx as isize - geom.padding as isize; // ix = ox·s + shift
        let ox_lo = if shift < 0 { ((-shift) as usize).div_ceil(stride).min(out_w) } else { 0 };
        let last = in_w as isize - 1 - shift;
        let ox_hi = if last < 0 { 0 } else { (last as usize / stride + 1).min(out_w) };
        let ox_hi = ox_hi.max(ox_lo);
        // Same bounds in y: rows fully inside the padding are zeroed with
        // single contiguous fills above and below the valid band.
        let vshift = ky as isize - geom.padding as isize; // iy = oy·s + vshift
        let oy_lo = if vshift < 0 { ((-vshift) as usize).div_ceil(stride).min(out_h) } else { 0 };
        let vlast = in_h as isize - 1 - vshift;
        let oy_hi = if vlast < 0 { 0 } else { (vlast as usize / stride + 1).min(out_h) };
        let oy_hi = oy_hi.max(oy_lo);
        KernelOffsetBounds { shift, vshift, ox_lo, ox_hi, oy_lo, oy_hi }
    }

    /// Lowers one channel plane's `(ky, kx)` row section into `out_row`
    /// (`out_h·out_w` cells), writing every cell including the padding, which
    /// is filled with `pad` (`0.0` for real activations, the quantization
    /// zero point for integer codes — both encode the real value zero).
    ///
    /// Generic over the scalar type so the `f32` path and the quantized
    /// (`i8`/`i16` code) paths share one lowering: the loop moves values
    /// without arithmetic, so the per-sample layout is identical for every
    /// element type.
    fn lower_plane<T: Copy>(&self, geom: &Conv2dGeometry, chan: &[T], out_row: &mut [T], pad: T) {
        let out_w = geom.out_w();
        let (stride, in_w) = (geom.stride, geom.in_w);
        out_row[..self.oy_lo * out_w].fill(pad);
        out_row[self.oy_hi * out_w..].fill(pad);
        for oy in self.oy_lo..self.oy_hi {
            let iy = (oy * stride) as isize + self.vshift;
            let orow = &mut out_row[oy * out_w..(oy + 1) * out_w];
            let src = &chan[iy as usize * in_w..(iy as usize + 1) * in_w];
            orow[..self.ox_lo].fill(pad);
            orow[self.ox_hi..].fill(pad);
            if self.ox_lo >= self.ox_hi {
                continue;
            }
            let start = ((self.ox_lo * stride) as isize + self.shift) as usize;
            if stride == 1 {
                orow[self.ox_lo..self.ox_hi]
                    .copy_from_slice(&src[start..start + (self.ox_hi - self.ox_lo)]);
            } else {
                let mut ix = start;
                for o in &mut orow[self.ox_lo..self.ox_hi] {
                    *o = src[ix];
                    ix += stride;
                }
            }
        }
    }
}

/// The shared, element-type-generic body of the batched lowering: validates
/// lengths against `batch` copies of `geom` and fills the whole
/// `[C·K·K, batch·out_h·out_w]` column buffer (padding cells get `pad`).
fn lower_batch<T: Copy>(
    input: &[T],
    batch: usize,
    geom: &Conv2dGeometry,
    pad: T,
    out: &mut [T],
) -> Result<()> {
    geom.validate()?;
    let plane = geom.in_h * geom.in_w;
    let in_len = geom.in_channels * batch * plane;
    if input.len() != in_len {
        return Err(TensorError::DataShapeMismatch { data_len: input.len(), shape_len: in_len });
    }
    if out.len() != geom.col_len() * batch {
        return Err(TensorError::DataShapeMismatch {
            data_len: out.len(),
            shape_len: geom.col_len() * batch,
        });
    }
    let cols = geom.col_cols();
    let row_stride = batch * cols;
    let k = geom.kernel;
    for ky in 0..k {
        for kx in 0..k {
            let bounds = KernelOffsetBounds::new(geom, ky, kx);
            for c in 0..geom.in_channels {
                let row = (c * k + ky) * k + kx;
                let out_row = &mut out[row * row_stride..(row + 1) * row_stride];
                for (s, block) in out_row.chunks_exact_mut(cols).enumerate() {
                    let chan = &input[(c * batch + s) * plane..][..plane];
                    bounds.lower_plane(geom, chan, block, pad);
                }
            }
        }
    }
    Ok(())
}

/// Lowers a `[C, H, W]` image (given as a flat slice) into a caller-provided
/// `[C·K·K, out_h·out_w]` column buffer. Never allocates; every output cell —
/// including zero padding — is written, so the buffer needs no prior clearing.
///
/// The single-sample instance of [`im2col_batch_into`]; both lower each
/// sample bit-identically.
///
/// # Errors
///
/// Returns an error when the geometry is invalid or either buffer length does
/// not match it.
pub fn im2col_into(input: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) -> Result<()> {
    im2col_batch_into(input, 1, geom, out)
}

/// Lowers a batch of `[C, H, W]` images into one wide column matrix.
///
/// The input uses the *channel-major wide* batch layout `[C, batch, H, W]`
/// (sample `s` of channel `c` starts at `(c·batch + s)·H·W`; for `batch == 1`
/// this is exactly the ordinary `[C, H, W]` layout). The output is the
/// `[C·K·K, batch·out_h·out_w]` column matrix in which sample `s` occupies
/// columns `s·out_h·out_w ..` — one contiguous activation matrix a single
/// widened GEMM can multiply against the filter matrix. Sample `s`'s column
/// block is bit-identical to what [`im2col_into`] produces for that sample
/// alone. Never allocates.
///
/// # Errors
///
/// Returns an error when the geometry is invalid or either buffer length does
/// not match `batch` copies of it.
pub fn im2col_batch_into(
    input: &[f32],
    batch: usize,
    geom: &Conv2dGeometry,
    out: &mut [f32],
) -> Result<()> {
    lower_batch(input, batch, geom, 0.0, out)
}

/// Quantized batched `im2col`: lowers a batch of `i8` activation-code images
/// into one wide column matrix of codes, ready for [`crate::gemm_i8_into`].
///
/// Layouts match [`im2col_batch_into`] exactly (channel-major wide input,
/// `[C·K·K, batch·out_h·out_w]` output); the only difference is the element
/// type and that padding cells are filled with `pad` — the activation
/// quantization's zero point, whose real value is exactly `0.0`, so the
/// lowered codes represent the same padded image the `f32` path sees.
///
/// # Errors
///
/// Returns an error when the geometry is invalid or either buffer length does
/// not match `batch` copies of it.
pub fn im2col_quant_batch_into(
    input: &[i8],
    batch: usize,
    geom: &Conv2dGeometry,
    pad: i8,
    out: &mut [i8],
) -> Result<()> {
    lower_batch(input, batch, geom, pad, out)
}

/// [`im2col_quant_batch_into`] over `i16` codes, feeding
/// [`crate::gemm_i16_into`] (the i16 layers widen their 8-bit activation
/// codes before lowering).
///
/// # Errors
///
/// Returns an error when the geometry is invalid or either buffer length does
/// not match `batch` copies of it.
pub fn im2col_quant_batch_i16_into(
    input: &[i16],
    batch: usize,
    geom: &Conv2dGeometry,
    pad: i16,
    out: &mut [i16],
) -> Result<()> {
    lower_batch(input, batch, geom, pad, out)
}

/// Channel-selective quantized batched `im2col`: lowers only the listed
/// input channels, producing a `[len(channels)·K², batch·out_h·out_w]`
/// column matrix of codes.
///
/// Channel pruning zeroes whole input-channel blocks of the filter matrix;
/// the quantized engine packs those blocks away from its weight codes and
/// skips them here, so a pruned layer's integer GEMM does proportionally
/// less work — the deployed-MCU behaviour ("pruned channels are physically
/// removed") rather than the zero-multiplying simulation. Each kept
/// channel's rows are lowered exactly as by [`im2col_quant_batch_into`];
/// with the identity channel list the outputs match cell for cell.
///
/// # Errors
///
/// Returns an error when the geometry is invalid, a channel index is out of
/// range, or a buffer length does not match.
pub fn im2col_quant_select_batch_into(
    input: &[i8],
    batch: usize,
    geom: &Conv2dGeometry,
    pad: i8,
    channels: &[usize],
    out: &mut [i8],
) -> Result<()> {
    geom.validate()?;
    let plane = geom.in_h * geom.in_w;
    let in_len = geom.in_channels * batch * plane;
    if input.len() != in_len {
        return Err(TensorError::DataShapeMismatch { data_len: input.len(), shape_len: in_len });
    }
    if let Some(&bad) = channels.iter().find(|&&c| c >= geom.in_channels) {
        return Err(TensorError::InvalidConvGeometry(format!(
            "selected channel {bad} out of range for {} input channels",
            geom.in_channels
        )));
    }
    let k = geom.kernel;
    let cols = geom.col_cols();
    let row_stride = batch * cols;
    let expected = channels.len() * k * k * row_stride;
    if out.len() != expected {
        return Err(TensorError::DataShapeMismatch { data_len: out.len(), shape_len: expected });
    }
    for ky in 0..k {
        for kx in 0..k {
            let bounds = KernelOffsetBounds::new(geom, ky, kx);
            for (ci, &c) in channels.iter().enumerate() {
                let row = (ci * k + ky) * k + kx;
                let out_row = &mut out[row * row_stride..(row + 1) * row_stride];
                for (s, block) in out_row.chunks_exact_mut(cols).enumerate() {
                    let chan = &input[(c * batch + s) * plane..][..plane];
                    bounds.lower_plane(geom, chan, block, pad);
                }
            }
        }
    }
    Ok(())
}

/// Lowers a `[C, H, W]` image into a `[C·K·K, out_h·out_w]` column matrix.
///
/// Allocating wrapper over [`im2col_into`]; both produce bit-identical
/// columns.
///
/// # Errors
///
/// Returns an error when the input tensor is not rank 3, its channel/height/
/// width do not match `geom`, or the geometry itself is invalid.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    geom.validate()?;
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: input.shape().rank() });
    }
    let dims = input.dims();
    if dims != [geom.in_channels, geom.in_h, geom.in_w] {
        return Err(TensorError::ShapeMismatch {
            left: dims.to_vec(),
            right: vec![geom.in_channels, geom.in_h, geom.in_w],
        });
    }
    let mut out = vec![0.0f32; geom.col_len()];
    im2col_into(input.as_slice(), geom, &mut out)?;
    Tensor::from_vec(out, &[geom.col_rows(), geom.col_cols()])
}

/// Scatters a `[C·K·K, out_h·out_w]` column-gradient slice back into a
/// caller-provided `[C, H, W]` image buffer (the adjoint of [`im2col_into`]).
/// The image buffer is zeroed first, then accumulated into; never allocates.
///
/// # Errors
///
/// Returns an error when the geometry is invalid or either buffer length does
/// not match it.
pub fn col2im_into(cols: &[f32], geom: &Conv2dGeometry, image: &mut [f32]) -> Result<()> {
    geom.validate()?;
    if cols.len() != geom.col_len() {
        return Err(TensorError::DataShapeMismatch {
            data_len: cols.len(),
            shape_len: geom.col_len(),
        });
    }
    let image_len = geom.in_channels * geom.in_h * geom.in_w;
    if image.len() != image_len {
        return Err(TensorError::DataShapeMismatch { data_len: image.len(), shape_len: image_len });
    }
    image.fill(0.0);
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let ncols = out_h * out_w;
    for c in 0..geom.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..out_h {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        let col = oy * out_w + ox;
                        image[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize] +=
                            cols[row * ncols + col];
                    }
                }
            }
        }
    }
    Ok(())
}

/// Scatters a `[C·K·K, out_h·out_w]` column-gradient matrix back into a
/// `[C, H, W]` image-gradient tensor (the adjoint of [`im2col`]).
///
/// Allocating wrapper over [`col2im_into`]; both produce bit-identical images.
///
/// # Errors
///
/// Returns an error when the column matrix shape does not match `geom` or the
/// geometry is invalid.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    geom.validate()?;
    let expected = [geom.col_rows(), geom.col_cols()];
    if cols.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            left: cols.dims().to_vec(),
            right: expected.to_vec(),
        });
    }
    let mut image = Tensor::zeros(&[geom.in_channels, geom.in_h, geom.in_w]);
    col2im_into(cols.as_slice(), geom, image.as_mut_slice())?;
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_3x3_stride1_nopad() -> Conv2dGeometry {
        Conv2dGeometry { in_channels: 1, in_h: 4, in_w: 4, kernel: 3, stride: 1, padding: 0 }
    }

    #[test]
    fn output_dims_follow_conv_arithmetic() {
        let g =
            Conv2dGeometry { in_channels: 3, in_h: 32, in_w: 32, kernel: 5, stride: 1, padding: 2 };
        assert_eq!(g.out_h(), 32);
        assert_eq!(g.out_w(), 32);
        let g2 =
            Conv2dGeometry { in_channels: 3, in_h: 32, in_w: 32, kernel: 5, stride: 2, padding: 0 };
        assert_eq!(g2.out_h(), 14);
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        let mut g = geom_3x3_stride1_nopad();
        g.stride = 0;
        assert!(g.validate().is_err());
        let mut g = geom_3x3_stride1_nopad();
        g.kernel = 9;
        assert!(g.validate().is_err());
    }

    #[test]
    fn im2col_produces_expected_columns() {
        let g = geom_3x3_stride1_nopad();
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 4, 4]).unwrap();
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // First column is the top-left 3x3 patch in row-major order.
        let first_col: Vec<f32> = (0..9).map(|r| cols.get(&[r, 0]).unwrap()).collect();
        assert_eq!(first_col, vec![0.0, 1.0, 2.0, 4.0, 5.0, 6.0, 8.0, 9.0, 10.0]);
        // Last column is the bottom-right patch.
        let last_col: Vec<f32> = (0..9).map(|r| cols.get(&[r, 3]).unwrap()).collect();
        assert_eq!(last_col, vec![5.0, 6.0, 7.0, 9.0, 10.0, 11.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn im2col_zero_pads_border() {
        let g =
            Conv2dGeometry { in_channels: 1, in_h: 2, in_w: 2, kernel: 3, stride: 1, padding: 1 };
        let input = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&input, &g).unwrap();
        // Top-left output position: only the bottom-right 2x2 of the kernel
        // overlaps real pixels, so exactly 4 ones.
        let first_col_sum: f32 = (0..9).map(|r| cols.get(&[r, 0]).unwrap()).sum();
        assert_eq!(first_col_sum, 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_counting() {
        // col2im(im2col(ones)) counts how many patches cover each pixel.
        let g = geom_3x3_stride1_nopad();
        let input = Tensor::ones(&[1, 4, 4]);
        let cols = im2col(&input, &g).unwrap();
        let back = col2im(&cols, &g).unwrap();
        // Centre pixels are covered by all 4 patches, corners by exactly 1.
        assert_eq!(back.get(&[0, 0, 0]), Some(1.0));
        assert_eq!(back.get(&[0, 1, 1]), Some(4.0));
        assert_eq!(back.get(&[0, 3, 3]), Some(1.0));
    }

    #[test]
    fn batched_im2col_matches_per_sample_im2col() {
        let g =
            Conv2dGeometry { in_channels: 2, in_h: 5, in_w: 4, kernel: 3, stride: 2, padding: 1 };
        let batch = 3;
        let plane = g.in_h * g.in_w;
        // Wide layout [C, batch, H, W] with distinct per-(channel, sample) data.
        let wide: Vec<f32> = (0..g.in_channels * batch * plane).map(|i| (i as f32).sin()).collect();
        let mut wide_cols = vec![f32::NAN; g.col_len() * batch];
        im2col_batch_into(&wide, batch, &g, &mut wide_cols).unwrap();
        let cols = g.col_cols();
        for s in 0..batch {
            // Reassemble sample s in plain [C, H, W] layout and lower it alone.
            let mut single = Vec::with_capacity(g.in_channels * plane);
            for c in 0..g.in_channels {
                single.extend_from_slice(&wide[(c * batch + s) * plane..][..plane]);
            }
            let mut single_cols = vec![0.0f32; g.col_len()];
            im2col_into(&single, &g, &mut single_cols).unwrap();
            for r in 0..g.col_rows() {
                assert_eq!(
                    &wide_cols[r * batch * cols + s * cols..][..cols],
                    &single_cols[r * cols..][..cols],
                    "sample {s} row {r}"
                );
            }
        }
    }

    #[test]
    fn batched_im2col_validates_lengths() {
        let g = geom_3x3_stride1_nopad();
        let mut out = vec![0.0f32; g.col_len() * 2];
        assert!(im2col_batch_into(&[0.0; 16], 2, &g, &mut out).is_err());
        let ok_input = vec![0.0; 32];
        let mut short = vec![0.0f32; g.col_len()];
        assert!(im2col_batch_into(&ok_input, 2, &g, &mut short).is_err());
        assert!(im2col_batch_into(&ok_input, 2, &g, &mut out).is_ok());
    }

    #[test]
    fn quantized_im2col_matches_float_lowering_cell_for_cell() {
        // The generic lowering moves values without arithmetic, so lowering
        // integer codes must place exactly the same per-cell values as
        // lowering the same values as floats — with `pad` where the float
        // path writes its zero fill.
        let g =
            Conv2dGeometry { in_channels: 2, in_h: 4, in_w: 5, kernel: 3, stride: 2, padding: 1 };
        let batch = 2;
        let plane = g.in_h * g.in_w;
        // Strictly nonzero codes, so a zero in the float lowering can only be
        // padding (and must therefore hold `pad` in the code lowering).
        let codes: Vec<i8> = (0..g.in_channels * batch * plane)
            .map(|i| {
                let v = (i % 99) as i8 + 1;
                if i % 2 == 0 {
                    v
                } else {
                    -v
                }
            })
            .collect();
        let pad: i8 = -7;
        let mut lowered = vec![0i8; g.col_len() * batch];
        im2col_quant_batch_into(&codes, batch, &g, pad, &mut lowered).unwrap();
        let floats: Vec<f32> = codes.iter().map(|&c| f32::from(c)).collect();
        let mut lowered_f = vec![f32::NAN; g.col_len() * batch];
        im2col_batch_into(&floats, batch, &g, &mut lowered_f).unwrap();
        for (i, (&c, &f)) in lowered.iter().zip(&lowered_f).enumerate() {
            let expected = if f == 0.0 { pad } else { f as i8 };
            assert_eq!(c, expected, "cell {i}");
        }
        // The i16 variant produces the widened copy of the i8 lowering.
        let codes16: Vec<i16> = codes.iter().map(|&c| i16::from(c)).collect();
        let mut lowered16 = vec![0i16; g.col_len() * batch];
        im2col_quant_batch_i16_into(&codes16, batch, &g, i16::from(pad), &mut lowered16).unwrap();
        assert_eq!(lowered16, lowered.iter().map(|&c| i16::from(c)).collect::<Vec<_>>());
        // Length validation mirrors the float path.
        let mut short = vec![0i8; g.col_len()];
        assert!(im2col_quant_batch_into(&codes, batch, &g, pad, &mut short).is_err());
        // Channel selection: the identity list reproduces the full lowering,
        // a subset extracts exactly its channels' row blocks.
        let mut selected = vec![0i8; g.col_len() * batch];
        im2col_quant_select_batch_into(&codes, batch, &g, pad, &[0, 1], &mut selected).unwrap();
        assert_eq!(selected, lowered);
        let rows_per_chan = g.kernel * g.kernel * g.col_cols() * batch;
        let mut chan1 = vec![0i8; rows_per_chan];
        im2col_quant_select_batch_into(&codes, batch, &g, pad, &[1], &mut chan1).unwrap();
        assert_eq!(chan1, lowered[rows_per_chan..]);
        assert!(im2col_quant_select_batch_into(&codes, batch, &g, pad, &[2], &mut chan1).is_err());
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let g = geom_3x3_stride1_nopad();
        let wrong = Tensor::zeros(&[1, 5, 5]);
        assert!(im2col(&wrong, &g).is_err());
        let wrong_cols = Tensor::zeros(&[9, 5]);
        assert!(col2im(&wrong_cols, &g).is_err());
    }
}
