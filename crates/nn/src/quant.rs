//! Quantized (integer) execution: per-layer kernel selection, pre-quantized
//! packed weights, and the fake-quant reference the optimized path is tested
//! against.
//!
//! The compression search assigns every parameterised layer a weight and an
//! activation bitwidth. Instead of dequantizing those weights back to `f32`,
//! the quantized backend runs such layers through true integer kernels:
//!
//! * **Kernel selection** — a layer whose [`LayerQuantConfig`] is present
//!   gets the i8 storage class when its weight bitwidth is ≤ 8 and the i16
//!   class when it is ≤ 16; layers without a config (or with wider weights)
//!   keep the `f32` kernels. Activation codes are always at most 8 bits and
//!   are stored as `i8`. Both integer classes execute through the shared
//!   transposed madd GEMM (see [`QuantizedLayer`]).
//! * **Packed weights** — [`QuantizedModel::for_network`] quantizes every
//!   configured layer's weights **once**, into depth-padded `[O, kp]` i16
//!   code rows with pruned-away input channels dropped, together with the
//!   per-row code sums used by the zero-point correction.
//! * **Requantization epilogue** — the integer accumulator is mapped back to
//!   a real value as `(acc − zp_in·Σw) · (s_w·s_in) + bias` (see
//!   [`ie_tensor::dequant_acc`]), with an optional fused ReLU. The epilogue
//!   emits **i8 codes** when the next parameterised layer of the same
//!   trunk-segment/branch layer list is also quantized (its input parameters
//!   are known at plan-construction time), and **f32** at quantized→float
//!   boundaries — in particular at the end of every layer list, so cached
//!   trunk activations and logits are always `f32` and any mix of per-layer
//!   policies composes.
//! * **Reference** — [`fake_quant_logits`] recomputes the same quantized
//!   network with naive per-element loops and the same scalar quantization
//!   helpers. Integer accumulation is associative, so the blocked kernels
//!   must (and do — property-tested) reproduce it bit for bit.

use crate::plan::buffer_requirements;
use crate::spec::{LayerSpecKind, MultiExitArchitecture};
use crate::{Conv2d, Dense, Layer, MultiExitNetwork, NnError, Result};
use ie_tensor::{
    dequant_acc, dequant_rows_slice_into, dequant_slice_into, gemm_i16t_into,
    im2col_quant_select_batch_into, requant_rows_slice_into, requant_slice_into,
    transpose_widen_into, weight_code, QuantParams, Tensor, MADD_DEPTH_ALIGN,
};

/// Which integer kernel a quantized layer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantKernel {
    /// 8-bit weight codes, `i8` GEMM.
    I8,
    /// 9–16-bit weight codes, `i16` GEMM.
    I16,
}

impl QuantKernel {
    /// Selects the kernel for a weight bitwidth: ≤ 8 → i8, 9–16 → i16, wider
    /// → `None` (the layer stays on the `f32` kernels).
    pub fn for_weight_bits(bits: u8) -> Option<QuantKernel> {
        match bits {
            1..=8 => Some(QuantKernel::I8),
            9..=16 => Some(QuantKernel::I16),
            _ => None,
        }
    }
}

/// Quantization of one parameterised layer: how its weights were scaled and
/// how its input activations are coded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerQuantConfig {
    /// Weight bitwidth (1..=16); selects the i8 or i16 kernel.
    pub weight_bits: u8,
    /// Weight quantization scale: `code = weight_code(w, scale, bits)`.
    pub weight_scale: f32,
    /// Quantization of this layer's **input** activation tensor (at most
    /// 8-bit codes, from calibration).
    pub input: QuantParams,
}

/// Per-layer quantization choices for a whole network, in the canonical
/// compressible-layer order of
/// [`crate::spec::MultiExitArchitecture::compressible_layers`]. `None`
/// entries keep the layer on the `f32` kernels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantConfig {
    layers: Vec<Option<LayerQuantConfig>>,
}

impl QuantConfig {
    /// Creates a config from per-layer entries in canonical order.
    pub fn from_layers(layers: Vec<Option<LayerQuantConfig>>) -> Self {
        QuantConfig { layers }
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the config covers no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Per-layer entries in canonical order.
    pub fn layers(&self) -> &[Option<LayerQuantConfig>] {
        &self.layers
    }
}

/// One layer's pre-quantized parameters, packed for the integer kernels.
///
/// Weight codes are stored **widened to `i16` and depth-padded** to
/// [`ie_tensor::MADD_DEPTH_ALIGN`] regardless of the selected kernel: both
/// the i8 and the i16 path execute through the transposed madd GEMM
/// ([`ie_tensor::gemm_i16t_into`]), whose `vpmaddwd` inner product is what
/// actually beats the `f32` kernels on AVX2 (see the kernel's docs). The
/// [`QuantKernel`] tag still records the storage class the policy selected —
/// it is what the 8-vs-16-bit deployment footprint accounting reflects.
#[derive(Debug, Clone)]
pub(crate) struct QuantizedLayer {
    /// Which integer kernel class this layer runs (storage semantics).
    pub(crate) kernel: QuantKernel,
    /// Widened, depth-padded weight codes, `[rows, kp]` row-major, holding
    /// only the **kept** input channels/features.
    pub(crate) w: Vec<i16>,
    /// Output rows (`out_channels` / `out_features`).
    pub(crate) rows: usize,
    /// Input channels (conv) / features (dense) whose weight codes are not
    /// all zero. Channel pruning zeroes whole blocks; packing them away lets
    /// the integer GEMM skip them entirely — the deployed-MCU behaviour —
    /// while changing no result (dropped codes are exactly zero).
    pub(crate) kept: Vec<usize>,
    /// Codes per kept channel (`k²` for conv, 1 for dense).
    pub(crate) block: usize,
    /// Packed real depth (`kept.len() · block`).
    pub(crate) cols: usize,
    /// Padded depth (`cols` rounded up to the madd alignment; pads are 0).
    pub(crate) kp: usize,
    /// Precomputed per-row zero-point corrections
    /// (`input.zero_point() · Σ_k w_code[row][k]`), so the epilogues can
    /// stream them through the vectorized per-row kernels.
    pub(crate) corr: Vec<i32>,
    /// Combined dequantization scale `input.scale · weight_scale`.
    pub(crate) combined_scale: f32,
    /// Input activation quantization.
    pub(crate) input: QuantParams,
    /// Output emission: `Some` → emit codes for the next quantized layer of
    /// the same list, `None` → emit `f32` (mixed-precision boundary or list
    /// end).
    pub(crate) out: Option<QuantParams>,
    /// The layer's `f32` bias, copied so the epilogue reads contiguously.
    pub(crate) bias: Vec<f32>,
}

impl QuantizedLayer {
    /// Weight code at `(row, full_idx)` in the **unpacked** depth space —
    /// used by the naive reference, which iterates every input
    /// channel/feature. Pruned-away (not kept) positions are exactly zero.
    fn code_at(&self, row: usize, full_idx: usize) -> i32 {
        let (chan, offset) = (full_idx / self.block, full_idx % self.block);
        match self.kept.iter().position(|&c| c == chan) {
            Some(pos) => i32::from(self.w[row * self.kp + pos * self.block + offset]),
            None => 0,
        }
    }

    /// Zero-point correction of one output row: `zp_in · Σ_k w_code[row][k]`.
    pub(crate) fn correction(&self, row: usize) -> i32 {
        self.corr[row]
    }
}

/// Packs one layer's weight codes: `weights` is `[rows, channels·block]`
/// row-major (`block` = `k²` for conv, 1 for dense). Channels whose codes
/// are all zero (pruned) are dropped from the packed matrix; at least one
/// channel is always kept so downstream shapes stay non-degenerate.
fn pack_blocks(
    weights: &[f32],
    rows: usize,
    channels: usize,
    block: usize,
    cfg: &LayerQuantConfig,
    recycle: Option<QuantizedLayer>,
) -> QuantizedLayer {
    let kernel =
        QuantKernel::for_weight_bits(cfg.weight_bits).expect("caller validated weight_bits <= 16");
    let full_cols = channels * block;
    // Reuse a previous policy's packed buffers when offered (the quantized
    // plan pool hands back the old layer): all four vectors are grow-only
    // across repacks, so a warmed pool packs without heap allocation.
    let (mut w, mut kept, mut corr, mut bias) = match recycle {
        Some(old) => (old.w, old.kept, old.corr, old.bias),
        None => Default::default(),
    };
    kept.clear();
    kept.extend((0..channels).filter(|&c| {
        (0..rows).any(|row| {
            weights[row * full_cols + c * block..row * full_cols + (c + 1) * block]
                .iter()
                .any(|&v| weight_code(v, cfg.weight_scale, cfg.weight_bits) != 0)
        })
    }));
    if kept.is_empty() {
        kept.push(0);
    }
    let cols = kept.len() * block;
    let kp = cols.next_multiple_of(MADD_DEPTH_ALIGN);
    w.clear();
    w.resize(rows * kp, 0i16);
    corr.clear();
    bias.clear();
    let zp = cfg.input.zero_point();
    for (row, dst) in w.chunks_exact_mut(kp).enumerate() {
        let src = &weights[row * full_cols..(row + 1) * full_cols];
        let mut row_sum = 0i32;
        for (ci, &chan) in kept.iter().enumerate() {
            for offset in 0..block {
                let c = weight_code(src[chan * block + offset], cfg.weight_scale, cfg.weight_bits);
                row_sum = row_sum.wrapping_add(c);
                dst[ci * block + offset] = c as i16;
            }
        }
        corr.push(zp.wrapping_mul(row_sum));
    }
    QuantizedLayer {
        kernel,
        w,
        rows,
        kept,
        block,
        cols,
        kp,
        corr,
        combined_scale: cfg.input.scale() * cfg.weight_scale,
        input: cfg.input,
        out: None,
        bias,
    }
}

/// Validates a whole config against `net` — the exact error surface of
/// [`QuantizedModel::for_network`] (entry count + per-entry ranges), exposed
/// so [`crate::BatchPlan::repack_quantized`] can pre-validate *before*
/// surrendering its old model's buffers to the recycling constructor (which
/// consumes them; an error after that point would otherwise destroy the
/// plan's quantized state).
pub(crate) fn validate_config(net: &MultiExitNetwork, config: &QuantConfig) -> Result<()> {
    let expected = net.architecture().compressible_layers().len();
    if config.len() != expected {
        return Err(NnError::InvalidSpec(format!(
            "quant config covers {} layers, network has {expected} compressible layers",
            config.len()
        )));
    }
    for (index, entry) in config.layers().iter().enumerate() {
        if let Some(cfg) = entry {
            validate_entry(index, cfg)?;
        }
    }
    Ok(())
}

fn validate_entry(index: usize, cfg: &LayerQuantConfig) -> Result<()> {
    let ok = (1..=16).contains(&cfg.weight_bits)
        && cfg.weight_scale.is_finite()
        && cfg.weight_scale > 0.0
        && cfg.input.lo() >= i32::from(i8::MIN)
        && cfg.input.hi() <= i32::from(i8::MAX);
    if !ok {
        return Err(NnError::InvalidSpec(format!(
            "quant config for layer {index} is invalid: weight_bits {} scale {} input {:?}",
            cfg.weight_bits, cfg.weight_scale, cfg.input
        )));
    }
    Ok(())
}

/// A network's pre-quantized layer parameters, aligned with its trunk
/// segments and branches — the per-layer side of a quantized
/// [`crate::ExecutionPlan`] / [`crate::BatchPlan`], built once at plan
/// construction.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    segments: Vec<Vec<Option<QuantizedLayer>>>,
    branches: Vec<Vec<Option<QuantizedLayer>>>,
}

impl QuantizedModel {
    /// Quantizes `net`'s parameterised layers according to `config` (one
    /// entry per compressible layer in canonical order).
    ///
    /// Weight codes are packed here, once; forward passes never touch the
    /// `f32` weights of configured layers again. Consecutive quantized layers
    /// within one trunk segment or branch are chained in the code domain (the
    /// earlier layer's epilogue emits the later layer's input codes); every
    /// list ends in `f32`, so trunk caching and branch evaluation are
    /// layout-compatible with the float engine.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when the config length does not match
    /// the network's compressible layers or an entry is out of range
    /// (weight bits outside 1..=16, activation codes outside `i8`, or
    /// non-positive scales).
    pub fn for_network(net: &MultiExitNetwork, config: &QuantConfig) -> Result<QuantizedModel> {
        QuantizedModel::for_network_recycling(net, config, None)
    }

    /// [`QuantizedModel::for_network`] that additionally **recycles** the
    /// buffers of a previous model (typically one packed for an earlier
    /// candidate policy of the same architecture): each layer's packed weight
    /// codes, kept-channel list, correction and bias vectors are reused
    /// grow-only, so a warmed [`crate::train::QuantPlanPool`] re-packs a new
    /// policy's weights without re-allocating them.
    pub(crate) fn for_network_recycling(
        net: &MultiExitNetwork,
        config: &QuantConfig,
        recycle: Option<QuantizedModel>,
    ) -> Result<QuantizedModel> {
        let expected = net.architecture().compressible_layers().len();
        if config.len() != expected {
            return Err(NnError::InvalidSpec(format!(
                "quant config covers {} layers, network has {expected} compressible layers",
                config.len()
            )));
        }
        // Flatten the old model into per-(exit, part) recycled lists; a
        // structural mismatch simply yields `None` recycle entries.
        let (mut old_segments, mut old_branches) = match recycle {
            Some(model) => (model.segments, model.branches),
            None => (Vec::new(), Vec::new()),
        };
        let mut index = 0usize;
        let mut segments = Vec::with_capacity(net.segments().len());
        let mut branches = Vec::with_capacity(net.branches().len());
        for exit in 0..net.num_exits() {
            for part in [true, false] {
                let layers = if part { &net.segments()[exit] } else { &net.branches()[exit] };
                let old = if part { &mut old_segments } else { &mut old_branches };
                let mut old_list =
                    if exit < old.len() { std::mem::take(&mut old[exit]) } else { Vec::new() };
                let mut recycle_at = |i: usize| -> Option<QuantizedLayer> {
                    old_list.get_mut(i).and_then(Option::take)
                };
                let mut list: Vec<Option<QuantizedLayer>> = Vec::with_capacity(layers.len());
                for (li, layer) in layers.iter().enumerate() {
                    let entry = match layer {
                        Layer::Conv2d(conv) => {
                            let cfg = config.layers()[index];
                            index += 1;
                            cfg.map(|cfg| -> Result<QuantizedLayer> {
                                validate_entry(index - 1, &cfg)?;
                                let geom = conv.geometry();
                                let mut ql = pack_blocks(
                                    conv.weight().as_slice(),
                                    conv.out_channels(),
                                    geom.in_channels,
                                    geom.kernel * geom.kernel,
                                    &cfg,
                                    recycle_at(li),
                                );
                                ql.bias.extend_from_slice(conv.bias().as_slice());
                                Ok(ql)
                            })
                            .transpose()?
                        }
                        Layer::Dense(dense) => {
                            let cfg = config.layers()[index];
                            index += 1;
                            cfg.map(|cfg| -> Result<QuantizedLayer> {
                                validate_entry(index - 1, &cfg)?;
                                let mut ql = pack_blocks(
                                    dense.weight().as_slice(),
                                    dense.out_features(),
                                    dense.in_features(),
                                    1,
                                    &cfg,
                                    recycle_at(li),
                                );
                                ql.bias.extend_from_slice(dense.bias().as_slice());
                                Ok(ql)
                            })
                            .transpose()?
                        }
                        _ => None,
                    };
                    list.push(entry);
                }
                // Chain consecutive quantized layers of this list: each one
                // emits the next one's input codes; the last always emits
                // f32. A *float* parameterised layer breaks the chain — it
                // consumes f32, so the quantized layer before it must emit
                // f32 even when a later layer of the list is quantized again.
                let mut next_input: Option<QuantParams> = None;
                for (layer, entry) in layers.iter().zip(list.iter_mut()).rev() {
                    match entry {
                        Some(ql) => {
                            ql.out = next_input;
                            next_input = Some(ql.input);
                        }
                        None if layer.is_parameterised() => next_input = None,
                        None => {}
                    }
                }
                if part {
                    segments.push(list);
                } else {
                    branches.push(list);
                }
            }
        }
        Ok(QuantizedModel { segments, branches })
    }

    /// Quantized entries of trunk segment `i`, aligned with its layers.
    pub(crate) fn segment(&self, i: usize) -> &[Option<QuantizedLayer>] {
        &self.segments[i]
    }

    /// Quantized entries of branch `i`, aligned with its layers.
    pub(crate) fn branch(&self, i: usize) -> &[Option<QuantizedLayer>] {
        &self.branches[i]
    }

    /// Cheap structural compatibility check: the model was built for a
    /// network with these segment/branch layer counts. (Weight changes on a
    /// same-shaped network are undetectable — quantized plans bake weights in
    /// and must be rebuilt after retraining or re-compression.)
    pub(crate) fn matches(&self, net: &MultiExitNetwork) -> bool {
        self.segments.len() == net.segments().len()
            && self.branches.len() == net.branches().len()
            && self.segments.iter().zip(net.segments()).all(|(q, l)| q.len() == l.len())
            && self.branches.iter().zip(net.branches()).all(|(q, l)| q.len() == l.len())
    }

    /// Number of layers running an integer kernel.
    pub fn num_quantized(&self) -> usize {
        self.segments.iter().chain(&self.branches).flatten().filter(|entry| entry.is_some()).count()
    }

    /// Counts of (i8, i16) kernel-class layers — the storage classes the
    /// policy selected (both execute through the shared madd GEMM).
    pub fn kernel_counts(&self) -> (usize, usize) {
        let mut i8_count = 0;
        let mut i16_count = 0;
        for ql in self.segments.iter().chain(&self.branches).flatten().flatten() {
            match ql.kernel {
                QuantKernel::I8 => i8_count += 1,
                QuantKernel::I16 => i16_count += 1,
            }
        }
        (i8_count, i16_count)
    }

    /// Returns `true` when no layer is quantized (the plan degenerates to the
    /// pure `f32` engine).
    pub fn is_empty(&self) -> bool {
        self.num_quantized() == 0
    }
}

/// Pre-sized integer scratch buffers of a quantized plan: activation-code
/// ping-pong slots, the transposed `im2row` patch buffer, the widened
/// sample-major dense-input buffer and the `i32` accumulator. Sized once at
/// plan construction; forward passes never allocate.
#[derive(Debug, Clone)]
pub(crate) struct QuantBuffers {
    /// Activation-code ping-pong slots (indexed like the f32 workspace slots).
    pub(crate) codes: [Vec<i8>; 2],
    /// Column scratch of the quantized `im2col` (`[k, n]` i8).
    pub(crate) col8: Vec<i8>,
    /// Transposed patch buffer of the quantized convolution (`[n, kp]` i16).
    pub(crate) rows16: Vec<i16>,
    /// Widened, depth-padded sample-major dense inputs (`[batch, kp]` i16).
    pub(crate) xs16: Vec<i16>,
    /// `i32` accumulator the integer GEMM writes and the epilogue reads.
    pub(crate) acc: Vec<i32>,
}

/// Per-unit-batch element counts of the integer scratch a quantized plan
/// needs for `arch`: `(rows16, xs16)` — the transposed conv patch buffer
/// (`out positions · padded depth`) and the widened dense input row.
fn integer_scratch_requirements(arch: &MultiExitArchitecture) -> (usize, usize) {
    let mut rows16 = 0usize;
    let mut xs16 = 0usize;
    for spec in arch.all_layers() {
        match &spec.kind {
            LayerSpecKind::Conv { in_channels, kernel, .. } => {
                let kp = (in_channels * kernel * kernel).next_multiple_of(MADD_DEPTH_ALIGN);
                let cols = spec.output_dims[1] * spec.output_dims[2];
                rows16 = rows16.max(cols * kp);
            }
            LayerSpecKind::Dense { in_features, .. } => {
                xs16 = xs16.max(in_features.next_multiple_of(MADD_DEPTH_ALIGN));
            }
            _ => {}
        }
    }
    (rows16, xs16)
}

impl QuantBuffers {
    /// Buffers sized for `arch` with up to `max_batch` samples per pass.
    pub(crate) fn for_architecture(arch: &MultiExitArchitecture, max_batch: usize) -> Self {
        let mb = max_batch.max(1);
        let (max_act, max_col) = buffer_requirements(arch);
        let (rows16, xs16) = integer_scratch_requirements(arch);
        QuantBuffers {
            codes: [vec![0i8; max_act * mb], vec![0i8; max_act * mb]],
            col8: vec![0i8; max_col * mb],
            rows16: vec![0i16; rows16 * mb],
            xs16: vec![0i16; xs16 * mb],
            acc: vec![0i32; max_act * mb],
        }
    }

    /// Returns `true` when these buffers can hold `arch` with `max_batch`
    /// samples per pass. The `f32`-side act/col capacities are checked by the
    /// plan itself; this covers the **integer** scratch, whose requirements
    /// (padded conv depth × output positions, widened dense rows) do not
    /// follow from the `f32` ones — a repack that skipped this check could
    /// pass the plan compatibility test and still overrun `rows16`/`xs16`
    /// mid-forward.
    pub(crate) fn fits(&self, arch: &MultiExitArchitecture, max_batch: usize) -> bool {
        let mb = max_batch.max(1);
        let (max_act, max_col) = buffer_requirements(arch);
        let (rows16, xs16) = integer_scratch_requirements(arch);
        self.codes.iter().all(|c| c.len() >= max_act * mb)
            && self.col8.len() >= max_col * mb
            && self.rows16.len() >= rows16 * mb
            && self.xs16.len() >= xs16 * mb
            && self.acc.len() >= max_act * mb
    }
}

/// Which representation currently holds the activation while a layer list
/// runs: real values in the `f32` workspace, or quantized codes (with their
/// parameters) in the plan's code slots. Lists always start and end in
/// [`Domain::F32`]; the code domain exists only between chained quantized
/// layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Domain {
    /// Activation lives in the `f32` ping-pong workspace.
    F32,
    /// Activation lives in the code ping-pong slots, quantized with the given
    /// parameters.
    Codes(QuantParams),
}

/// The quantized side of a plan: the pre-packed integer model plus the
/// integer scratch buffers, both built once at plan construction.
#[derive(Debug, Clone)]
pub(crate) struct QuantState {
    pub(crate) model: QuantizedModel,
    pub(crate) bufs: QuantBuffers,
}

/// Per-list quantized context handed to a plan's layer runner: the list's
/// aligned quantized entries and the shared integer buffers.
pub(crate) type QuantCtx<'a> = Option<(&'a [Option<QuantizedLayer>], &'a mut QuantBuffers)>;

/// Splits the code ping-pong array into `(current, other)` slot borrows.
pub(crate) fn code_pair(codes: &mut [Vec<i8>; 2], slot: usize) -> (&mut Vec<i8>, &mut Vec<i8>) {
    let (a, b) = codes.split_at_mut(1);
    if slot == 0 {
        (&mut a[0], &mut b[0])
    } else {
        (&mut b[0], &mut a[0])
    }
}

/// Quantizes an `f32` activation slice into codes (elementwise; layout-
/// preserving, so it works for both the single and the wide batched layout).
/// Routed through the dispatched [`QuantParams::quantize_slice_into`] kernel.
pub(crate) fn quantize_slice(src: &[f32], p: &QuantParams, dst: &mut [i8]) {
    p.quantize_slice_into(src, dst);
}

/// Where a quantized layer's epilogue writes its output.
pub(crate) enum QuantDst<'a> {
    /// Dequantize to `f32` (mixed-precision boundary or list end).
    F32(&'a mut [f32]),
    /// Emit input codes of the next quantized layer.
    Codes(&'a mut [i8]),
}

/// Applies the requantization epilogue over row-major `[rows, row_len]`
/// accumulators (the convolution layout: one row per output channel).
fn epilogue_rows(
    acc: &[i32],
    ql: &QuantizedLayer,
    row_len: usize,
    fuse_relu: bool,
    dst: QuantDst<'_>,
) {
    match dst {
        QuantDst::F32(out) => {
            for (row, (acc_row, out_row)) in
                acc.chunks_exact(row_len).zip(out.chunks_exact_mut(row_len)).enumerate()
            {
                dequant_slice_into(
                    acc_row,
                    ql.correction(row),
                    ql.combined_scale,
                    ql.bias[row],
                    fuse_relu,
                    out_row,
                );
            }
        }
        QuantDst::Codes(out) => {
            let p = ql.out.expect("code emission requires output params");
            let floor = if fuse_relu { p.zero_point() } else { p.lo() };
            for (row, (acc_row, out_row)) in
                acc.chunks_exact(row_len).zip(out.chunks_exact_mut(row_len)).enumerate()
            {
                requant_slice_into(
                    acc_row,
                    ql.correction(row),
                    ql.combined_scale,
                    ql.bias[row],
                    &p,
                    floor,
                    out_row,
                );
            }
        }
    }
}

/// Applies the requantization epilogue over sample-major `[batch, rows]`
/// accumulators (the dense layout).
fn epilogue_samples(
    acc: &[i32],
    ql: &QuantizedLayer,
    rows: usize,
    fuse_relu: bool,
    dst: QuantDst<'_>,
) {
    match dst {
        QuantDst::F32(out) => {
            for (acc_row, out_row) in acc.chunks_exact(rows).zip(out.chunks_exact_mut(rows)) {
                dequant_rows_slice_into(
                    acc_row,
                    &ql.corr,
                    &ql.bias,
                    ql.combined_scale,
                    fuse_relu,
                    out_row,
                );
            }
        }
        QuantDst::Codes(out) => {
            let p = ql.out.expect("code emission requires output params");
            let floor = if fuse_relu { p.zero_point() } else { p.lo() };
            for (acc_row, out_row) in acc.chunks_exact(rows).zip(out.chunks_exact_mut(rows)) {
                requant_rows_slice_into(
                    acc_row,
                    &ql.corr,
                    &ql.bias,
                    ql.combined_scale,
                    &p,
                    floor,
                    out_row,
                );
            }
        }
    }
}

/// Runs one quantized convolution over `batch` samples of input codes (wide
/// channel-major layout for `batch > 1`): the plane-major quantized
/// `im2col` lowering, the blocked widening transpose into depth-padded i16
/// patch rows, the madd GEMM into the `i32` accumulator, and the
/// requantization epilogue into `dst`. Allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quant_conv_forward(
    conv: &Conv2d,
    ql: &QuantizedLayer,
    codes_in: &[i8],
    batch: usize,
    fuse_relu: bool,
    col8: &mut [i8],
    rows16: &mut [i16],
    acc: &mut [i32],
    dst: QuantDst<'_>,
) -> Result<()> {
    let geom = conv.geometry();
    let n = batch * geom.col_cols();
    let (m, k, kp) = (ql.rows, ql.cols, ql.kp);
    let cols = &mut col8[..k * n];
    im2col_quant_select_batch_into(
        codes_in,
        batch,
        geom,
        ql.input.zero_point() as i8,
        &ql.kept,
        cols,
    )?;
    let patches = &mut rows16[..n * kp];
    transpose_widen_into(cols, k, n, kp, patches);
    gemm_i16t_into(&ql.w, patches, &mut acc[..m * n], m, kp, n);
    epilogue_rows(&acc[..m * n], ql, n, fuse_relu, dst);
    Ok(())
}

/// Runs one quantized dense layer over `batch` sample-major input code
/// vectors: widens them into depth-padded i16 rows, runs the madd GEMM
/// (activations as the left operand, packed weight codes as the transposed
/// right operand) into the `i32` accumulator, then the requantization
/// epilogue into `dst`. Allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quant_dense_forward(
    ql: &QuantizedLayer,
    codes_in: &[i8],
    in_features: usize,
    batch: usize,
    fuse_relu: bool,
    xs16: &mut [i16],
    acc: &mut [i32],
    dst: QuantDst<'_>,
) {
    let (m, k, kp) = (ql.rows, ql.cols, ql.kp);
    let xs = &mut xs16[..batch * kp];
    for (dst_row, src_row) in xs.chunks_exact_mut(kp).zip(codes_in.chunks_exact(in_features)) {
        // Gather only the kept features (pruned ones multiply zero codes and
        // were packed away from the weight matrix).
        for (d, &feat) in dst_row[..k].iter_mut().zip(&ql.kept) {
            *d = i16::from(src_row[feat]);
        }
        dst_row[k..].fill(0);
    }
    gemm_i16t_into(xs, &ql.w, &mut acc[..batch * m], batch, kp, m);
    epilogue_samples(&acc[..batch * m], ql, m, fuse_relu, dst);
}

/// The activation flowing through the naive reference walk.
enum RefAct {
    /// Real-valued activation.
    F32(Tensor),
    /// Quantized activation: codes, their parameters, and the logical dims.
    Codes(Vec<i8>, QuantParams, Vec<usize>),
}

fn ref_codes_of(act: &RefAct, p: &QuantParams) -> (Vec<i8>, Vec<usize>) {
    match act {
        RefAct::F32(t) => {
            let codes = t.as_slice().iter().map(|&v| p.quantize(v) as i8).collect();
            (codes, t.dims().to_vec())
        }
        RefAct::Codes(codes, params, dims) => {
            debug_assert_eq!(params, p, "chained codes must use the consumer's input params");
            (codes.clone(), dims.clone())
        }
    }
}

fn ref_emit(ql: &QuantizedLayer, raw: Vec<f32>, dims: Vec<usize>) -> Result<RefAct> {
    Ok(match ql.out {
        None => RefAct::F32(Tensor::from_vec(raw, &dims)?),
        Some(p) => RefAct::Codes(raw.iter().map(|&f| p.quantize(f) as i8).collect(), p, dims),
    })
}

fn ref_conv(conv: &Conv2d, ql: &QuantizedLayer, act: &RefAct) -> Result<RefAct> {
    let geom = conv.geometry();
    let (codes, dims) = ref_codes_of(act, &ql.input);
    if dims != [geom.in_channels, geom.in_h, geom.in_w] {
        return Err(NnError::InputShapeMismatch {
            layer: "quant-ref conv2d".into(),
            expected: vec![geom.in_channels, geom.in_h, geom.in_w],
            actual: dims,
        });
    }
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let zp = ql.input.zero_point();
    let mut raw = Vec::with_capacity(ql.rows * out_h * out_w);
    for o in 0..ql.rows {
        let corr = ql.correction(o);
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0i32;
                let mut idx = 0usize;
                for c in 0..geom.in_channels {
                    for ky in 0..geom.kernel {
                        for kx in 0..geom.kernel {
                            let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            let code = if iy >= 0
                                && iy < geom.in_h as isize
                                && ix >= 0
                                && ix < geom.in_w as isize
                            {
                                i32::from(
                                    codes[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize],
                                )
                            } else {
                                zp
                            };
                            acc = acc.wrapping_add(ql.code_at(o, idx).wrapping_mul(code));
                            idx += 1;
                        }
                    }
                }
                raw.push(dequant_acc(acc, corr, ql.combined_scale, ql.bias[o]));
            }
        }
    }
    ref_emit(ql, raw, vec![ql.rows, out_h, out_w])
}

fn ref_dense(dense: &Dense, ql: &QuantizedLayer, act: &RefAct) -> Result<RefAct> {
    let (codes, _) = ref_codes_of(act, &ql.input);
    if codes.len() != dense.in_features() {
        return Err(NnError::InputShapeMismatch {
            layer: "quant-ref dense".into(),
            expected: vec![dense.in_features()],
            actual: vec![codes.len()],
        });
    }
    let mut raw = Vec::with_capacity(ql.rows);
    for o in 0..ql.rows {
        let mut acc = 0i32;
        for (i, &c) in codes.iter().enumerate() {
            acc = acc.wrapping_add(ql.code_at(o, i).wrapping_mul(i32::from(c)));
        }
        raw.push(dequant_acc(acc, ql.correction(o), ql.combined_scale, ql.bias[o]));
    }
    ref_emit(ql, raw, vec![ql.rows])
}

fn ref_run_list(
    layers: &[Layer],
    qlist: &[Option<QuantizedLayer>],
    mut act: RefAct,
) -> Result<RefAct> {
    for (layer, entry) in layers.iter().zip(qlist) {
        act = match (layer, entry) {
            (Layer::Conv2d(conv), Some(ql)) => ref_conv(conv, ql, &act)?,
            (Layer::Dense(dense), Some(ql)) => ref_dense(dense, ql, &act)?,
            (Layer::Relu(relu), _) => match act {
                RefAct::F32(t) => RefAct::F32(relu.forward(&t)?),
                RefAct::Codes(mut codes, p, dims) => {
                    for c in &mut codes {
                        *c = (*c).max(p.zero_point() as i8);
                    }
                    RefAct::Codes(codes, p, dims)
                }
            },
            (Layer::MaxPool2d(pool), _) => match act {
                RefAct::F32(t) => RefAct::F32(pool.forward(&t)?),
                RefAct::Codes(codes, p, dims) => {
                    let d = [dims[0], dims[1], dims[2]];
                    let out_dims = pool.output_dims(&d);
                    let mut out = vec![0i8; out_dims.iter().product()];
                    pool.forward_codes_into(&codes, d, &mut out)?;
                    RefAct::Codes(out, p, out_dims.to_vec())
                }
            },
            (Layer::Flatten(_), _) => match act {
                RefAct::F32(t) => RefAct::F32(t.reshape(&[t.len()])?),
                RefAct::Codes(codes, p, dims) => {
                    let n = dims.iter().product();
                    RefAct::Codes(codes, p, vec![n])
                }
            },
            (other, _) => match act {
                RefAct::F32(t) => RefAct::F32(other.forward(&t)?),
                RefAct::Codes(..) => {
                    return Err(NnError::InvalidSpec(
                        "float layer reached in the code domain (chaining bug)".into(),
                    ))
                }
            },
        };
    }
    Ok(act)
}

/// Naive fake-quant reference of the integer engine: recomputes inference to
/// `exit` with per-element loops, the same packed codes and the same scalar
/// quantization arithmetic as the optimized quantized plans.
///
/// Integer accumulation is associative, so the optimized kernels must return
/// **bit-identical** logits — which the equivalence property tests assert
/// over random policies and batch sizes. This function allocates freely; it
/// exists as a test oracle and a documentation of the exact semantics, not as
/// an execution path.
///
/// # Errors
///
/// Returns [`NnError::InvalidExit`] for an unknown exit or shape errors when
/// `input` does not match the architecture.
pub fn fake_quant_logits(
    net: &MultiExitNetwork,
    model: &QuantizedModel,
    input: &Tensor,
    exit: usize,
) -> Result<Vec<f32>> {
    if exit >= net.num_exits() {
        return Err(NnError::InvalidExit { requested: exit, available: net.num_exits() });
    }
    let mut act = RefAct::F32(input.clone());
    for seg in 0..=exit {
        act = ref_run_list(&net.segments()[seg], model.segment(seg), act)?;
    }
    act = ref_run_list(&net.branches()[exit], model.branch(exit), act)?;
    match act {
        RefAct::F32(t) => Ok(t.as_slice().to_vec()),
        RefAct::Codes(..) => {
            Err(NnError::InvalidSpec("branch ended in the code domain (chaining bug)".into()))
        }
    }
}

/// Derives a [`QuantConfig`] for `net` directly from per-layer bitwidths with
/// max-abs weight scales and caller-provided activation parameters — the
/// plumbing-free construction used by tests and benchmarks that do not run
/// the compression crate's calibrated path.
///
/// `entries` pairs each compressible layer (canonical order) with
/// `Some((weight_bits, input_params))` or `None` to keep it on `f32`.
///
/// # Errors
///
/// Returns [`NnError::InvalidSpec`] when the entry count does not match the
/// network's compressible layers.
pub fn config_from_bits(
    net: &MultiExitNetwork,
    entries: &[Option<(u8, QuantParams)>],
) -> Result<QuantConfig> {
    let specs = net.architecture().compressible_layers();
    if entries.len() != specs.len() {
        return Err(NnError::InvalidSpec(format!(
            "{} quant entries for {} compressible layers",
            entries.len(),
            specs.len()
        )));
    }
    let mut layers = Vec::with_capacity(entries.len());
    let mut index = 0usize;
    for exit in 0..net.num_exits() {
        for part in [true, false] {
            let list = if part { &net.segments()[exit] } else { &net.branches()[exit] };
            for layer in list {
                let weights = match layer {
                    Layer::Conv2d(conv) => conv.weight(),
                    Layer::Dense(dense) => dense.weight(),
                    _ => continue,
                };
                let entry = entries[index].map(|(bits, input)| {
                    let max_abs = weights.as_slice().iter().fold(0.0f32, |m, &w| m.max(w.abs()));
                    let hi = if bits == 1 { 1.0 } else { ((1i64 << (bits - 1)) - 1) as f32 };
                    let weight_scale =
                        if max_abs > 0.0 { (max_abs / hi).max(f32::MIN_POSITIVE) } else { 1.0 };
                    LayerQuantConfig { weight_bits: bits, weight_scale, input }
                });
                layers.push(entry);
                index += 1;
            }
        }
    }
    Ok(QuantConfig::from_layers(layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tiny_multi_exit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
    }

    fn all_i8_config(net: &MultiExitNetwork) -> QuantConfig {
        let n = net.architecture().compressible_layers().len();
        let act = QuantParams::from_range(0.0, 6.0, 8);
        let first = QuantParams::from_range(-3.0, 3.0, 8);
        let entries: Vec<Option<(u8, QuantParams)>> =
            (0..n).map(|i| Some((8, if i == 0 { first } else { act }))).collect();
        config_from_bits(net, &entries).unwrap()
    }

    #[test]
    fn model_build_packs_codes_and_chains_within_lists() {
        let net = tiny_net(1);
        let cfg = all_i8_config(&net);
        let model = QuantizedModel::for_network(&net, &cfg).unwrap();
        assert_eq!(model.num_quantized(), cfg.len());
        assert!(!model.is_empty());
        // Branch 1 of the tiny net is Flatten, FC-B21, Relu, FC-B22: the two
        // dense layers are consecutive quantized layers of one list, so the
        // first chains codes into the second and the second emits f32.
        let branch = model.branch(1);
        let quantized: Vec<&QuantizedLayer> = branch.iter().filter_map(|e| e.as_ref()).collect();
        assert_eq!(quantized.len(), 2);
        assert_eq!(quantized[0].out, Some(quantized[1].input));
        assert_eq!(quantized[1].out, None);
        // Trunk segment 0 holds a single conv: it must emit f32 (list end).
        let seg = model.segment(0);
        let conv = seg.iter().find_map(|e| e.as_ref()).unwrap();
        assert_eq!(conv.out, None);
        assert_eq!(conv.kernel, QuantKernel::I8);
        assert_eq!(conv.kp, conv.cols.next_multiple_of(MADD_DEPTH_ALIGN));
        assert_eq!(conv.w.len(), conv.rows * conv.kp);
        assert_eq!(conv.corr.len(), conv.rows);
        let sum0: i32 = conv.w[..conv.kp].iter().map(|&c| i32::from(c)).sum();
        assert_eq!(
            conv.corr[0],
            conv.input.zero_point().wrapping_mul(sum0),
            "depth pads are zero, so they never shift the correction"
        );
    }

    #[test]
    fn model_build_validates_config() {
        let net = tiny_net(2);
        // Wrong length.
        assert!(QuantizedModel::for_network(&net, &QuantConfig::from_layers(vec![None])).is_err());
        // Out-of-range entry (activation codes wider than i8).
        let n = net.architecture().compressible_layers().len();
        let mut layers = vec![None; n];
        layers[0] = Some(LayerQuantConfig {
            weight_bits: 8,
            weight_scale: 0.1,
            input: QuantParams::new(0.1, 0, -300, 300),
        });
        assert!(QuantizedModel::for_network(&net, &QuantConfig::from_layers(layers)).is_err());
        // Invalid weight bits.
        let mut layers = vec![None; n];
        layers[0] = Some(LayerQuantConfig {
            weight_bits: 17,
            weight_scale: 0.1,
            input: QuantParams::from_range(0.0, 1.0, 8),
        });
        assert!(QuantizedModel::for_network(&net, &QuantConfig::from_layers(layers)).is_err());
    }

    #[test]
    fn kernel_selection_follows_weight_bits() {
        assert_eq!(QuantKernel::for_weight_bits(1), Some(QuantKernel::I8));
        assert_eq!(QuantKernel::for_weight_bits(8), Some(QuantKernel::I8));
        assert_eq!(QuantKernel::for_weight_bits(9), Some(QuantKernel::I16));
        assert_eq!(QuantKernel::for_weight_bits(16), Some(QuantKernel::I16));
        assert_eq!(QuantKernel::for_weight_bits(17), None);
        assert_eq!(QuantKernel::for_weight_bits(32), None);
    }

    #[test]
    fn fake_quant_reference_runs_and_respects_exits() {
        let net = tiny_net(3);
        let cfg = all_i8_config(&net);
        let model = QuantizedModel::for_network(&net, &cfg).unwrap();
        let x = Tensor::ones(&[1, 8, 8]);
        for exit in 0..net.num_exits() {
            let logits = fake_quant_logits(&net, &model, &x, exit).unwrap();
            assert_eq!(logits.len(), 3);
            assert!(logits.iter().all(|l| l.is_finite()));
        }
        assert!(matches!(fake_quant_logits(&net, &model, &x, 9), Err(NnError::InvalidExit { .. })));
    }

    #[test]
    fn a_float_layer_between_two_quantized_layers_breaks_the_code_chain() {
        // lenet branch 1 is ConvB2 → ReLU → Flatten → FC-B21 → ReLU → FC-B22:
        // quantizing ConvB2 and FC-B22 while FC-B21 stays f32 must NOT chain
        // ConvB2's codes across the float dense layer (regression test: the
        // chain used to skip non-quantized parameterised layers, feeding
        // FC-B21 a stale f32 slot in release builds).
        use crate::spec::lenet_multi_exit;
        let mut rng = StdRng::seed_from_u64(7);
        let net = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
        let n = net.architecture().compressible_layers().len();
        // Canonical order: Conv1 ConvB1 FC-B1 Conv2 ConvB2 FC-B21 FC-B22 ...
        let act = QuantParams::from_range(0.0, 8.0, 8);
        let mut entries: Vec<Option<(u8, QuantParams)>> = vec![None; n];
        entries[4] = Some((8, act)); // ConvB2
        entries[6] = Some((8, act)); // FC-B22 (FC-B21 stays f32)
        let cfg = config_from_bits(&net, &entries).unwrap();
        let model = QuantizedModel::for_network(&net, &cfg).unwrap();
        let branch = model.branch(1);
        let quantized: Vec<&QuantizedLayer> = branch.iter().filter_map(|e| e.as_ref()).collect();
        assert_eq!(quantized.len(), 2);
        assert_eq!(quantized[0].out, None, "ConvB2 must emit f32 for the float FC-B21");
        assert_eq!(quantized[1].out, None);
        // The engine and the reference agree end to end on that branch.
        let x = Tensor::ones(&[3, 32, 32]);
        let reference = fake_quant_logits(&net, &model, &x, 1).unwrap();
        let mut plan = net.execution_plan_quantized(&cfg).unwrap();
        net.forward_to_exit_with(&mut plan, &x, 1).unwrap();
        assert_eq!(plan.logits(1), reference.as_slice());
    }

    #[test]
    fn mixed_precision_boundaries_emit_f32() {
        // Quantize only FC-B21 (branch 1's first dense layer): its successor
        // FC-B22 stays f32, so the quantized layer must emit f32.
        let net = tiny_net(4);
        let n = net.architecture().compressible_layers().len();
        let mut entries: Vec<Option<(u8, QuantParams)>> = vec![None; n];
        // Canonical order of tiny: Conv1, FC-B1, Conv2, FC-B21, FC-B22.
        entries[3] = Some((12, QuantParams::from_range(0.0, 4.0, 8)));
        let cfg = config_from_bits(&net, &entries).unwrap();
        let model = QuantizedModel::for_network(&net, &cfg).unwrap();
        assert_eq!(model.num_quantized(), 1);
        let ql = model.branch(1).iter().find_map(|e| e.as_ref()).unwrap();
        assert_eq!(ql.kernel, QuantKernel::I16);
        assert_eq!(ql.out, None);
        let logits = fake_quant_logits(&net, &model, &Tensor::ones(&[1, 8, 8]), 1).unwrap();
        assert_eq!(logits.len(), 3);
    }
}
