//! Hierarchical deterministic seed forking.
//!
//! A fleet simulation needs one independent RNG stream per virtual device —
//! and per *purpose* within a device (trace synthesis, event arrivals,
//! correctness draws, fault schedule) — all derived from a single master
//! seed, so that:
//!
//! * the whole fleet is exactly reproducible from one `u64`,
//! * any single device can be extracted and replayed in isolation with
//!   bit-identical results (its streams depend only on the master seed and
//!   its own path, never on how many other devices ran or on which worker),
//! * enabling an optional feature (e.g. fault injection) never perturbs the
//!   streams of anything else.
//!
//! The scheme is a path-based fork: a seed is folded through a SplitMix64
//! finalizer once per path component, mirroring the `from_hierarchical_seed`
//! pattern where a child RNG is derived by walking `&[usize]` indices down
//! from a root seed. The vendored `rand` only seeds from a `u64`
//! (`SeedableRng::seed_from_u64`), so the fork operates directly on `u64`
//! seed material rather than on byte arrays.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 increment ("golden gamma") used to separate path levels.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a bijective avalanche mix of the full 64-bit state.
///
/// Because the mix is bijective, folding distinct path components through it
/// never loses entropy; two forks collide only when the mixed states collide,
/// which for distinct paths behaves like a random 64-bit collision.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of the RNG stream at `path` under `master`.
///
/// The derivation folds each path component into the running state with a
/// SplitMix64 step, so `fork_seed(m, &[a, b])` is exactly
/// `fork_seed(fork_seed(m, &[a]), &[b])` — subtrees can be re-rooted, which
/// is what lets a fleet worker derive a device's streams without knowing
/// anything about the rest of the fleet.
///
/// The empty path is the identity (`fork_seed(m, &[]) == m`) — composition
/// forces this: with `y = []`, `fork(m, x ++ y) == fork(fork(m, x), y)`
/// only holds when the empty fork changes nothing.
///
/// # Example
///
/// ```
/// use ie_energy::fork_seed;
///
/// let device_7_trace = fork_seed(42, &[7, 0]);
/// // Re-rooting at the device gives the same stream.
/// assert_eq!(device_7_trace, fork_seed(fork_seed(42, &[7]), &[0]));
/// // Sibling paths diverge.
/// assert_ne!(device_7_trace, fork_seed(42, &[7, 1]));
/// ```
pub fn fork_seed(master: u64, path: &[u64]) -> u64 {
    let mut state = master;
    for &component in path {
        // Mix the component itself first so adjacent indices (0, 1, 2, …)
        // land far apart, then fold it into the running state.
        let salted = splitmix64(component.wrapping_add(GOLDEN_GAMMA));
        state = splitmix64(state ^ salted);
    }
    state
}

/// Builds the [`StdRng`] of the stream at `path` under `master`
/// (see [`fork_seed`]).
pub fn fork_rng(master: u64, path: &[u64]) -> StdRng {
    StdRng::seed_from_u64(fork_seed(master, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    #[test]
    fn forks_are_deterministic() {
        assert_eq!(fork_seed(1, &[2, 3]), fork_seed(1, &[2, 3]));
        let a: f64 = fork_rng(1, &[2, 3]).gen();
        let b: f64 = fork_rng(1, &[2, 3]).gen();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn forks_compose_by_re_rooting() {
        let flat = fork_seed(99, &[4, 5, 6]);
        let nested = fork_seed(fork_seed(fork_seed(99, &[4]), &[5]), &[6]);
        assert_eq!(flat, nested);
    }

    #[test]
    fn sibling_and_parent_streams_differ() {
        let m = 0xF1EE7;
        let parent = fork_seed(m, &[3]);
        let child_a = fork_seed(m, &[3, 0]);
        let child_b = fork_seed(m, &[3, 1]);
        assert_ne!(parent, child_a);
        assert_ne!(child_a, child_b);
        // The empty path is the identity — the monoid unit of re-rooting.
        assert_eq!(fork_seed(m, &[]), m);
    }

    #[test]
    fn distinct_masters_give_distinct_streams() {
        let a = fork_rng(1, &[0]).next_u64();
        let b = fork_rng(2, &[0]).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn dense_device_paths_do_not_collide() {
        // The exact fleet layout: purposes 0..6 under devices 0..N. Every
        // derived seed must be unique (a collision would make two devices
        // correlated).
        let mut seen = std::collections::HashSet::new();
        for device in 0..2_000u64 {
            for purpose in 0..6u64 {
                assert!(
                    seen.insert(fork_seed(2026, &[device, purpose])),
                    "collision at device {device} purpose {purpose}"
                );
            }
        }
    }
}
